package storage

import (
	"math/rand"
	"testing"

	"emucheck/internal/node"
	"emucheck/internal/sim"
)

// drain runs the simulator until the volume's disk requests settle.
func drain(s *sim.Simulator) { s.Run() }

func newTestVolume(s *sim.Simulator) *Volume {
	m := node.NewMachine(s, "t", node.DefaultParams())
	return NewVolume(m.Disk, 4<<30, Optimized)
}

// TestLineageReplayIdentity is the delta-chain reconstruction property:
// under a random write workload with commits at random epochs, the
// materialized base + replayed delta chain must be byte-identical
// (content-tag identical) to a full checkpoint of the volume — across
// prune/merge boundaries, which the tiny MaxDepth forces constantly.
func TestLineageReplayIdentity(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := sim.New(seed)
		v := newTestVolume(s)
		l := NewLineage(2) // tiny depth bound: every few commits prune

		pruned := false
		for epoch := 0; epoch < 12; epoch++ {
			// Random workload: a mix of fresh writes, overwrites of hot
			// blocks, and multi-block extents.
			for w := 0; w < 1+rng.Intn(40); w++ {
				blk := int64(rng.Intn(200))
				if rng.Intn(3) == 0 {
					blk = int64(rng.Intn(8)) // hot set: forces overlap across epochs
				}
				n := int64(1+rng.Intn(3)) * BlockSize
				v.Write(blk*BlockSize, n, nil)
			}
			drain(s)

			// Commit the epoch delta and merge locally, as a swap-out does.
			l.Commit(v.EpochBlocks(nil), 0)
			v.Merge(true, nil)
			if l.Depth() < l.MaxDepth+1 && l.Epochs() > l.MaxDepth {
				pruned = true
			}

			got, want := l.Materialize(), v.Snapshot(nil)
			if len(got) != len(want) {
				t.Fatalf("seed %d epoch %d: replay has %d blocks, snapshot %d", seed, epoch, len(got), len(want))
			}
			for vba, tag := range want {
				if got[vba] != tag {
					t.Fatalf("seed %d epoch %d: block %d replayed tag %d, want %d", seed, epoch, vba, got[vba], tag)
				}
			}
		}
		if !pruned {
			t.Fatalf("seed %d: chain never hit the prune boundary; property untested", seed)
		}
		if l.Depth() > l.MaxDepth {
			t.Fatalf("seed %d: chain depth %d exceeds bound %d", seed, l.Depth(), l.MaxDepth)
		}
		if l.MergedBytes == 0 {
			t.Fatalf("seed %d: pruning merged nothing", seed)
		}
	}
}

// TestLineageFreeBlockDrop: retroactive free-block elimination must
// remove freed blocks from the replayed image exactly as the volume's
// merge drops them from the delta history.
func TestLineageFreeBlockDrop(t *testing.T) {
	s := sim.New(7)
	v := newTestVolume(s)
	l := NewLineage(2)
	isFree := func(vba int64) bool { return vba%2 == 0 }

	for epoch := 0; epoch < 6; epoch++ {
		for blk := int64(0); blk < 20; blk++ {
			v.Write(blk*BlockSize, BlockSize, nil)
		}
		drain(s)
		l.Commit(v.EpochBlocks(isFree), 0)
		v.Merge(true, isFree)
	}
	l.Drop(isFree)

	got, want := l.Materialize(), v.Snapshot(isFree)
	if len(got) != len(want) {
		t.Fatalf("replay has %d blocks, snapshot %d", len(got), len(want))
	}
	for vba, tag := range want {
		if isFree(vba) {
			t.Fatalf("snapshot retains freed block %d", vba)
		}
		if got[vba] != tag {
			t.Fatalf("block %d replayed tag %d, want %d", vba, got[vba], tag)
		}
	}
}

// TestLineageReplayBounded: replay cost must stay bounded by pruning
// even as committed epochs grow without limit.
func TestLineageReplayBounded(t *testing.T) {
	l := NewLineage(3)
	// Every epoch rewrites the same 10 hot blocks plus 2 fresh ones.
	fresh := int64(1000)
	for epoch := 0; epoch < 50; epoch++ {
		blocks := make(map[int64]int64)
		for b := int64(0); b < 10; b++ {
			blocks[b] = int64(epoch*100) + b
		}
		blocks[fresh] = int64(epoch)
		blocks[fresh+1] = int64(epoch)
		fresh += 2
		l.Commit(blocks, 0)
	}
	if l.Depth() != 3 {
		t.Fatalf("depth %d, want 3", l.Depth())
	}
	// Base holds hot blocks once (deduplicated) plus all pruned fresh
	// blocks; chain holds 3 epochs of 12. Unbounded replay would be
	// 50*12 blocks.
	maxBlocks := int64(10 + 2*50 + 3*12)
	if got := l.ReplayBytes() / BlockSize; got > maxBlocks {
		t.Fatalf("replay %d blocks, want <= %d (pruning not deduplicating)", got, maxBlocks)
	}
}
