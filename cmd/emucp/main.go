// Command emucp drives the simulated testbed interactively from the
// command line: it swaps in a demo experiment, runs workloads, takes
// transparent checkpoints, performs stateful swap cycles, and walks the
// time-travel tree, narrating what the experiment observed.
//
// Usage:
//
//	emucp checkpoint   # run + 3 transparent distributed checkpoints
//	emucp swap         # stateful swap-out / swap-in cycle
//	emucp timetravel   # rollback and branch a run
//	emucp demo         # all of the above
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"emucheck"
	"emucheck/internal/apps"
	"emucheck/internal/emulab"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

func scenario() emucheck.Scenario {
	return emucheck.Scenario{
		Spec: emulab.Spec{
			Name: "emucp-demo",
			Nodes: []emulab.NodeSpec{
				{Name: "client", Swappable: true},
				{Name: "server", Swappable: true},
			},
			Links: []emulab.LinkSpec{{
				A: "client", B: "server",
				Bandwidth: 100 * simnet.Mbps,
				Delay:     10 * sim.Millisecond,
			}},
		},
	}
}

func checkpointDemo(w io.Writer, seed int64) error {
	sc := scenario()
	var loop *apps.SleepLoop
	sc.Setup = func(s *emucheck.Session) {
		loop = apps.NewSleepLoop(s.Kernel("client"), 1200)
		loop.Run(nil)
	}
	s := emucheck.NewSession(sc, seed)
	fmt.Fprintln(w, "running a 10 ms sleep loop; checkpointing every 5 s ...")
	s.PeriodicCheckpoints(5*sim.Second, 3)
	s.RunFor(30 * sim.Second)
	fmt.Fprintf(w, "iterations: %d  mean: %.3f ms  worst: %.3f ms\n",
		loop.Times.Len(),
		loop.Times.Mean()/float64(sim.Millisecond),
		loop.Times.Max()/float64(sim.Millisecond))
	for i, r := range s.Exp.Coord.History {
		fmt.Fprintf(w, "checkpoint %d: downtime %v concealed; suspend skew %v; %d bytes\n",
			i+1, r.MaxDowntime(), r.SuspendSkew, r.TotalBytes)
	}
	return nil
}

func swapDemo(w io.Writer, seed int64) error {
	s := emucheck.NewSession(scenario(), seed)
	s.RunFor(2 * sim.Second)
	v0 := s.VirtualNow("client")
	fmt.Fprintf(w, "virtual time before swap-out: %v\n", v0)
	out, err := s.SwapOut()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "swapped out in %v (pre-copied %d MB, memory %d MB)\n",
		out[0].Duration(), out[0].PreCopyBytes>>20, out[0].MemoryBytes>>20)
	s.RunFor(sim.Hour) // parked: the hardware serves someone else
	in, err := s.SwapIn(true)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "swapped in (lazy) in %v\n", in[0].Duration())
	s.RunFor(sim.Second)
	fmt.Fprintf(w, "virtual time after 1 s of post-swap running: %v\n", s.VirtualNow("client"))
	fmt.Fprintln(w, "the hour away never happened, as far as the experiment knows")
	return nil
}

func timetravelDemo(w io.Writer, seed int64) error {
	s := emucheck.NewSession(scenario(), seed)
	s.RunFor(2 * sim.Second)
	r1, err := s.Checkpoint()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "checkpoint 1 at virtual %v (%d bytes)\n", s.VirtualNow("client"), r1.TotalBytes)
	s.RunFor(3 * sim.Second)
	if _, err := s.Checkpoint(); err != nil {
		return err
	}
	fmt.Fprintf(w, "checkpoint 2 at virtual %v; tree has %d nodes\n", s.VirtualNow("client"), s.Tree.Len())

	replay, err := s.Rollback(1, emucheck.Perturbation{Kind: emucheck.SeedChange, Seed: seed + 1})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "rolled back to node 1; replaying with a perturbed seed ...\n")
	replay.RunFor(3 * sim.Second)
	if _, err := replay.Checkpoint(); err != nil {
		return err
	}
	fmt.Fprintf(w, "branch recorded; tree now has %d nodes, %d leaves\n",
		replay.Tree.Len(), len(replay.Tree.Leaves()))
	return nil
}

// cli is the whole command behind a testable seam: args excludes the
// program name and the return value is the process exit code.
func cli(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("emucp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 42, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cmd := fs.Arg(0)
	var err error
	switch cmd {
	case "checkpoint":
		err = checkpointDemo(stdout, *seed)
	case "swap":
		err = swapDemo(stdout, *seed)
	case "timetravel":
		err = timetravelDemo(stdout, *seed)
	case "demo", "":
		demos := []func(io.Writer, int64) error{checkpointDemo, swapDemo, timetravelDemo}
		for i, d := range demos {
			if i > 0 {
				fmt.Fprintln(stdout)
			}
			if err = d(stdout, *seed); err != nil {
				break
			}
		}
	default:
		fmt.Fprintf(stderr, "emucp: unknown command %q (want checkpoint|swap|timetravel|demo)\n", cmd)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "emucp:", err)
		return 1
	}
	return 0
}

func main() {
	os.Exit(cli(os.Args[1:], os.Stdout, os.Stderr))
}
