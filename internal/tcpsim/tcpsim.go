// Package tcpsim is a compact TCP implementation for the simulated
// guests: slow start, congestion avoidance, fast retransmit on three
// duplicate ACKs, and an RTO timer with SRTT estimation.
//
// The paper's network experiments hinge on flow-controlled traffic that
// *would* expose a broken checkpoint: §7.1 verifies from the iperf
// packet trace that checkpoints caused "no retransmissions, double
// acknowledgements, or changes of window size". This implementation
// counts exactly those events so the reproduction can assert the same.
// All timers run inside the temporal firewall (they are guest kernel
// timers), so a transparent checkpoint must not trip them.
package tcpsim

import (
	"sort"

	"emucheck/internal/sim"
)

// MSS is the maximum segment payload (1500-byte MTU minus headers).
const MSS = 1448

// WireOverhead is the per-segment header cost on the wire.
const WireOverhead = 52

// MinRTO mirrors Linux's 200 ms minimum retransmission timeout.
const MinRTO = 200 * sim.Millisecond

// Segment is one TCP segment. Every segment carries a cumulative ACK.
type Segment struct {
	Conn  string
	Seq   int64 // first payload byte
	Len   int   // payload bytes (0 for a pure ACK)
	Ack   int64 // cumulative acknowledgement
	Wnd   int64 // advertised receive window
	Rtx   bool  // marked when this is a retransmission
	SentV sim.Time
}

// WireSize reports the segment's size on the wire.
func (g *Segment) WireSize() int { return g.Len + WireOverhead }

// Timer is an opaque armed-timer reference.
type Timer any

// Env abstracts the guest kernel services TCP needs. Timers must be
// guest virtual-time timers (inside the firewall); Output hands a
// segment to the network path.
type Env interface {
	Now() sim.Time
	StartTimer(d sim.Time, name string, fn func()) Timer
	StopTimer(t Timer)
	Output(seg *Segment)
}

// Sender is the transmitting half of a one-directional stream.
type Sender struct {
	env  Env
	conn string

	una      int64 // oldest unacknowledged byte
	nxt      int64 // next byte to send
	cwnd     int64
	ssthresh int64
	rwnd     int64
	goal     int64 // total bytes the app wants sent; -1 = unbounded
	closed   bool

	dupAcks   int
	rto       sim.Time
	srtt      sim.Time
	rttvar    sim.Time
	rtoTimer  Timer
	rttSeq    int64 // sequence being timed
	rttSentAt sim.Time

	// OnProgress, if set, is called with newly acknowledged byte counts.
	OnProgress func(n int64)

	// Statistics the evaluation asserts on.
	Retransmits  int
	Timeouts     int
	FastRecovers int
	SegmentsSent int
}

// NewSender creates a sender for connection id conn.
func NewSender(env Env, conn string) *Sender {
	return &Sender{
		env: env, conn: conn,
		cwnd: 2 * MSS, ssthresh: 1 << 20, rwnd: 256 << 10, goal: -1,
		rto: MinRTO, rttSeq: -1,
	}
}

// Stream sets the total bytes to send; -1 streams forever. It kicks the
// transmit pump.
func (s *Sender) Stream(total int64) {
	s.goal = total
	s.pump()
}

// InFlight reports unacknowledged bytes.
func (s *Sender) InFlight() int64 { return s.nxt - s.una }

// Acked reports cumulative acknowledged bytes.
func (s *Sender) Acked() int64 { return s.una }

// Done reports whether a bounded stream is fully acknowledged.
func (s *Sender) Done() bool { return s.goal >= 0 && s.una >= s.goal }

func (s *Sender) window() int64 {
	w := s.cwnd
	if s.rwnd < w {
		w = s.rwnd
	}
	return w
}

// pump transmits while the window allows.
func (s *Sender) pump() {
	for !s.closed {
		if s.goal >= 0 && s.nxt >= s.goal {
			return
		}
		if s.InFlight()+MSS > s.window() {
			return
		}
		n := int64(MSS)
		if s.goal >= 0 && s.goal-s.nxt < n {
			n = s.goal - s.nxt
		}
		seg := &Segment{Conn: s.conn, Seq: s.nxt, Len: int(n), Wnd: s.rwnd, SentV: s.env.Now()}
		if s.rttSeq < 0 {
			// Time this segment for SRTT (Karn's rule: only new data).
			s.rttSeq = s.nxt
			s.rttSentAt = s.env.Now()
		}
		s.nxt += n
		s.SegmentsSent++
		s.armRTO()
		s.env.Output(seg)
	}
}

func (s *Sender) armRTO() {
	if s.rtoTimer != nil {
		return
	}
	s.rtoTimer = s.env.StartTimer(s.rto, s.conn+".rto", s.onRTO)
}

func (s *Sender) rearmRTO() {
	if s.rtoTimer != nil {
		s.env.StopTimer(s.rtoTimer)
		s.rtoTimer = nil
	}
	if s.InFlight() > 0 {
		s.armRTO()
	}
}

func (s *Sender) onRTO() {
	s.rtoTimer = nil
	if s.InFlight() == 0 {
		return
	}
	// Timeout: collapse to slow start and retransmit the hole.
	s.Timeouts++
	s.ssthresh = max64(s.InFlight()/2, 2*MSS)
	s.cwnd = MSS
	s.dupAcks = 0
	s.rto *= 2
	s.retransmit()
	s.armRTO()
}

func (s *Sender) retransmit() {
	n := int64(MSS)
	if s.goal >= 0 && s.goal-s.una < n {
		n = s.goal - s.una
	}
	if n <= 0 {
		return
	}
	s.Retransmits++
	s.SegmentsSent++
	s.env.Output(&Segment{Conn: s.conn, Seq: s.una, Len: int(n), Wnd: s.rwnd, Rtx: true, SentV: s.env.Now()})
}

// HandleSegment processes an inbound (pure-ACK) segment from the peer.
func (s *Sender) HandleSegment(g *Segment) {
	s.rwnd = g.Wnd
	switch {
	case g.Ack > s.una:
		newly := g.Ack - s.una
		s.una = g.Ack
		s.dupAcks = 0
		// RTT sample.
		if s.rttSeq >= 0 && g.Ack > s.rttSeq {
			s.updateRTT(s.env.Now() - s.rttSentAt)
			s.rttSeq = -1
		}
		// Window growth.
		if s.cwnd < s.ssthresh {
			s.cwnd += newly // slow start
		} else {
			s.cwnd += MSS * MSS / s.cwnd // congestion avoidance
		}
		s.rearmRTO()
		if s.OnProgress != nil {
			s.OnProgress(newly)
		}
		s.pump()
	case g.Ack == s.una && s.InFlight() > 0:
		s.dupAcks++
		if s.dupAcks == 3 {
			// Fast retransmit + simplified fast recovery.
			s.FastRecovers++
			s.ssthresh = max64(s.InFlight()/2, 2*MSS)
			s.cwnd = s.ssthresh + 3*MSS
			s.retransmit()
		} else if s.dupAcks > 3 {
			s.cwnd += MSS
			s.pump()
		}
	}
}

func (s *Sender) updateRTT(sample sim.Time) {
	if s.srtt == 0 {
		s.srtt = sample
		s.rttvar = sample / 2
	} else {
		d := sample - s.srtt
		if d < 0 {
			d = -d
		}
		s.rttvar = (3*s.rttvar + d) / 4
		s.srtt = (7*s.srtt + sample) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < MinRTO {
		s.rto = MinRTO
	}
}

// SRTT reports the smoothed RTT estimate.
func (s *Sender) SRTT() sim.Time { return s.srtt }

// Close stops the transmit pump and its timer.
func (s *Sender) Close() {
	s.closed = true
	if s.rtoTimer != nil {
		s.env.StopTimer(s.rtoTimer)
		s.rtoTimer = nil
	}
}

// Receiver is the receiving half: it reassembles the stream, emits one
// cumulative ACK per data segment, and reports in-order delivery.
type Receiver struct {
	env  Env
	conn string

	rcvNxt int64
	wnd    int64
	ooo    map[int64]int // seq -> len of out-of-order segments

	// OnData receives (newly delivered in-order bytes, total delivered).
	OnData func(n int, total int64)

	// Statistics for the paper's trace checks.
	SegmentsRcvd int
	DupData      int
	AcksSent     int
	WndChanges   int
}

// NewReceiver creates a receiver for connection id conn.
func NewReceiver(env Env, conn string) *Receiver {
	return &Receiver{env: env, conn: conn, wnd: 256 << 10, ooo: make(map[int64]int)}
}

// Delivered reports total in-order bytes handed to the application.
func (r *Receiver) Delivered() int64 { return r.rcvNxt }

// HandleSegment processes an inbound data segment and responds with a
// cumulative ACK.
func (r *Receiver) HandleSegment(g *Segment) {
	r.SegmentsRcvd++
	switch {
	case g.Seq == r.rcvNxt:
		delivered := g.Len
		r.rcvNxt += int64(g.Len)
		// Drain contiguous out-of-order data.
		for {
			l, ok := r.ooo[r.rcvNxt]
			if !ok {
				break
			}
			delete(r.ooo, r.rcvNxt)
			r.rcvNxt += int64(l)
			delivered += l
		}
		if r.OnData != nil && delivered > 0 {
			r.OnData(delivered, r.rcvNxt)
		}
	case g.Seq > r.rcvNxt:
		r.ooo[g.Seq] = g.Len
	default:
		r.DupData++
	}
	r.AcksSent++
	r.env.Output(&Segment{Conn: r.conn, Ack: r.rcvNxt, Wnd: r.wnd, SentV: r.env.Now()})
}

// OOOSegments reports buffered out-of-order segments (sorted, for tests).
func (r *Receiver) OOOSegments() []int64 {
	out := make([]int64, 0, len(r.ooo))
	for s := range r.ooo {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
