package apps

import (
	"emucheck/internal/guest"
	"emucheck/internal/metrics"
	"emucheck/internal/sim"
)

// FileCopy is the Fig. 9 workload: copying a large file, measuring
// write throughput at one-second intervals, while background swap
// transfers may be competing for the disk. It reads from one region and
// writes to another in 1 MiB chunks.
type FileCopy struct {
	K     *guest.Kernel
	Bytes int64

	// Throughput holds (virtual time, MB/s) samples per second.
	Throughput *metrics.Series

	copied       int64
	secStart     sim.Time
	secBytes     int64
	done         func()
	ExecutionDur sim.Time
}

// NewFileCopy builds the workload (default 256 MB, enough for a
// multi-minute trace at ~17 MB/s with contention).
func NewFileCopy(k *guest.Kernel, bytes int64) *FileCopy {
	return &FileCopy{K: k, Bytes: bytes, Throughput: metrics.NewSeries(k.Name + ".filecopy")}
}

const fcChunk = 1 << 20

// srcBase/dstBase separate the regions so the copy seeks between them.
const (
	fcSrcBase = 2 << 30
	fcDstBase = 4 << 30
)

// Run starts the copy; done fires at completion.
func (f *FileCopy) Run(done func()) {
	f.done = done
	f.secStart = f.K.Monotonic()
	start := f.secStart
	f.step(0, func() {
		f.ExecutionDur = f.K.Monotonic() - start
		f.flushSecond()
		if f.done != nil {
			f.done()
		}
	})
}

func (f *FileCopy) step(off int64, fin func()) {
	if off >= f.Bytes {
		fin()
		return
	}
	f.K.ReadDisk(fcSrcBase+off, fcChunk, func() {
		f.K.WriteDisk(fcDstBase+off, fcChunk, func() {
			f.secBytes += fcChunk
			f.tickSecond()
			f.step(off+fcChunk, fin)
		})
	})
}

func (f *FileCopy) tickSecond() {
	now := f.K.Monotonic()
	for now-f.secStart >= sim.Second {
		f.flushSecond()
	}
}

func (f *FileCopy) flushSecond() {
	mbps := float64(f.secBytes) / (1 << 20)
	f.Throughput.Add(f.secStart, mbps)
	f.secStart += sim.Second
	f.secBytes = 0
}
