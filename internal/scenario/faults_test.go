package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRunFaultsScenario replays the committed faults example: the
// dropped notification aborts exactly one epoch, the crash is
// recovered from the last committed epoch, and every assertion in the
// file holds.
func TestRunFaultsScenario(t *testing.T) {
	res, err := Run(load(t, "faults.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("faults scenario failed:\n%s", res.Render())
	}
	row := res.Experiments[0]
	if row.EpochsAborted < 1 || row.Recoveries != 1 {
		t.Fatalf("aborted=%d recoveries=%d", row.EpochsAborted, row.Recoveries)
	}
	if res.Faults == nil || res.Faults.Crashes != 1 || res.Faults.Dropped != 1 {
		t.Fatalf("fault summary %+v", res.Faults)
	}
	if res.Bus == nil || res.Bus.Dropped != 1 {
		t.Fatalf("bus stats %+v", res.Bus)
	}
	if st, ok := res.Bus.Topics["checkpoint"]; !ok || st.Dropped != 1 {
		t.Fatalf("per-topic drop not recorded: %+v", res.Bus.Topics)
	}
}

// TestRunFaultsScenarioDeterministic: two runs of the same faulty file
// and seed are byte-identical — injection lives on the simulator's
// deterministic rails.
func TestRunFaultsScenarioDeterministic(t *testing.T) {
	run := func() string {
		res, err := Run(load(t, "faults.json"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same faulty file+seed diverged:\n%s\n%s", a, b)
	}
}

// TestValidateCatchesFaultProblems exercises the stanza's validation
// surface.
func TestValidateCatchesFaultProblems(t *testing.T) {
	mk := func(mut func(*File)) []error {
		f := load(t, "faults.json")
		mut(f)
		return Validate(f)
	}
	cases := []struct {
		name string
		mut  func(*File)
		want string
	}{
		{"unknown kind", func(f *File) { f.Faults[0].Kind = "meteor" }, "unknown kind"},
		{"bad at", func(f *File) { f.Faults[0].At = "sideways" }, "does not parse"},
		{"unknown target", func(f *File) { f.Faults[1].Target = "ghost" }, "unknown target"},
		{"slow needs node", func(f *File) {
			f.Faults = append(f.Faults, Fault{Kind: "slow_disk", At: "10s", Target: "e1"})
		}, "needs a node"},
		{"bad save_deadline", func(f *File) { f.SaveDeadline = "yes" }, "save_deadline"},
		{"epochs unswappable", func(f *File) {
			f.Experiments[0].Nodes[0].Swappable = false
		}, "swappable"},
		{"recovered needs target", func(f *File) {
			f.Assertions = append(f.Assertions, Assertion{Type: "recovered"})
		}, "needs a target"},
		{"epochs_aborted needs value", func(f *File) {
			f.Assertions = append(f.Assertions, Assertion{Type: "epochs_aborted"})
		}, "positive value"},
	}
	for _, tc := range cases {
		errs := mk(tc.mut)
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: wanted error containing %q, got %v", tc.name, tc.want, errs)
		}
	}
}
