package simnet

import (
	"testing"

	"emucheck/internal/sim"
)

func TestPortFuncAdapter(t *testing.T) {
	got := 0
	var p Port = PortFunc(func(*Packet) { got++ })
	p.Accept(&Packet{})
	if got != 1 {
		t.Fatal("adapter")
	}
}

func TestFreezeDuringThawReplay(t *testing.T) {
	// Refreezing while a replay is in flight: already-scheduled replay
	// deliveries land (they are wire arrivals in progress); packets
	// still arriving afterwards are logged again. Nothing is lost.
	s := sim.New(1)
	a, b := pair(s, 1000*Mbps, 0)
	n := 0
	b.OnReceive(func(*Packet) { n++ })
	b.Freeze()
	for i := 0; i < 4; i++ {
		a.Send(&Packet{Dst: "b", Size: 500})
	}
	s.Run()
	b.Thaw()
	// Refreeze immediately: replay events are queued with 1 µs spacing.
	b.Freeze()
	s.Run()
	b.Thaw()
	s.Run()
	if n != 4 {
		t.Fatalf("delivered %d/4 across freeze-thaw-freeze", n)
	}
}

func TestExplicitFlowPreserved(t *testing.T) {
	s := sim.New(1)
	a, b := pair(s, 100*Mbps, 0)
	var flow string
	b.OnReceive(func(p *Packet) { flow = p.Flow })
	a.Send(&Packet{Dst: "b", Size: 100, Flow: "custom-flow"})
	s.Run()
	if flow != "custom-flow" {
		t.Fatalf("flow = %q", flow)
	}
}

func TestQueuedTxCount(t *testing.T) {
	s := sim.New(1)
	a, b := pair(s, 1*Mbps, 0) // slow: 1500B takes 12ms
	b.OnReceive(func(*Packet) {})
	for i := 0; i < 3; i++ {
		a.Send(&Packet{Dst: "b", Size: 1500})
	}
	if a.QueuedTx() != 3 {
		t.Fatalf("queued = %d", a.QueuedTx())
	}
	s.Run()
	if a.QueuedTx() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestSwitchMultiplePorts(t *testing.T) {
	s := sim.New(1)
	sw := NewSwitch(s, sim.Microsecond)
	nics := make(map[Addr]*NIC)
	hits := make(map[Addr]int)
	for _, n := range []Addr{"a", "b", "c", "d"} {
		n := n
		nic := NewNIC(s, n, 100*Mbps)
		nic.Attach(sw)
		nic.OnReceive(func(*Packet) { hits[n]++ })
		sw.Connect(n, nic)
		nics[n] = nic
	}
	// Full mesh of one packet each.
	for _, src := range []Addr{"a", "b", "c", "d"} {
		for _, dst := range []Addr{"a", "b", "c", "d"} {
			if src != dst {
				nics[src].Send(&Packet{Dst: dst, Size: 100})
			}
		}
	}
	s.Run()
	for n, h := range hits {
		if h != 3 {
			t.Fatalf("%s received %d", n, h)
		}
	}
	if sw.Forwarded != 12 {
		t.Fatalf("forwarded = %d", sw.Forwarded)
	}
}
