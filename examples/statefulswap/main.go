// Stateful swap: the paper's §5 facility. An experiment accumulates
// run-time state (memory and disk), is preemptively swapped out to free
// its hardware, sits on the shelf for an hour, and is swapped back in —
// with the entire period of inactivity concealed from the experiment.
package main

import (
	"fmt"

	"emucheck"
	"emucheck/internal/emulab"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

func main() {
	sc := emucheck.Scenario{
		Spec: emulab.Spec{
			Name: "swapdemo",
			Nodes: []emulab.NodeSpec{
				{Name: "worker", Swappable: true},
				{Name: "peer", Swappable: true},
			},
			Links: []emulab.LinkSpec{
				{A: "worker", B: "peer", Bandwidth: 100 * simnet.Mbps, Delay: 2 * sim.Millisecond},
			},
		},
	}

	// The workload builds up disk state — the "node-local state" classic
	// Emulab swap-out would destroy (§2) and stateful swapping preserves.
	var ticks int
	sc.Setup = func(s *emucheck.Session) {
		k := s.Kernel("worker")
		var step func()
		step = func() {
			k.WriteDisk(int64(ticks)*(4<<20), 4<<20, func() {
				ticks++
				k.Usleep(200*sim.Millisecond, step)
			})
		}
		step()
	}

	s := emucheck.NewSession(sc, 7)
	s.RunFor(20 * sim.Second)
	fmt.Printf("worker has written %d chunks; virtual clock %v\n", ticks, s.VirtualNow("worker"))

	out, err := s.SwapOut()
	if err != nil {
		panic(err)
	}
	for _, r := range out {
		fmt.Printf("swap-out: %v (pre-copied %d MB while running, memory %d MB, merged delta %d MB)\n",
			r.Duration(), r.PreCopyBytes>>20, r.MemoryBytes>>20, r.MergedBytes>>20)
		break
	}

	fmt.Println("experiment parked for 1 hour; its nodes serve other users ...")
	s.RunFor(sim.Hour)

	in, err := s.SwapIn(true) // lazy copy-in: constant swap-in time
	if err != nil {
		panic(err)
	}
	fmt.Printf("swap-in (lazy): %v\n", in[0].Duration())

	t0 := ticks
	s.RunFor(5 * sim.Second)
	fmt.Printf("workload resumed where it left off: %d -> %d chunks\n", t0, ticks)
	fmt.Printf("virtual clock %v — the hour of inactivity is invisible\n", s.VirtualNow("worker"))
}
