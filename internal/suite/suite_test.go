package suite

import (
	"bytes"
	"encoding/json"
	"encoding/xml"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"emucheck"
	"emucheck/internal/scenario"
	"emucheck/internal/scengen"
)

// loadExamples parses every shipped example scenario.
func loadExamples(t *testing.T) ([]*scenario.File, []string) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		t.Fatal("no example scenarios found")
	}
	var files []*scenario.File
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		f, err := scenario.Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		files = append(files, f)
	}
	return files, paths
}

// TestExamplesPassSuiteInvariants runs every shipped example scenario
// under the suite's shared invariants: each must validate, pass its
// own assertions, and satisfy every conservation law.
func TestExamplesPassSuiteInvariants(t *testing.T) {
	files, paths := loadExamples(t)
	for i, f := range files {
		f := f
		name := filepath.Base(paths[i])
		t.Run(name, func(t *testing.T) {
			if errs := scenario.Validate(f); len(errs) > 0 {
				t.Fatalf("does not validate: %v", errs)
			}
			rr := RunOne(f, paths[i])
			if rr.Error != "" {
				t.Fatalf("run error: %s", rr.Error)
			}
			for _, inv := range rr.Invariants {
				if !inv.Ok {
					t.Errorf("invariant %s: %s", inv.Name, inv.Detail)
				}
			}
			if !rr.Pass {
				t.Errorf("scenario failed: %+v", rr.Result.Checks)
			}
		})
	}
}

// TestMatrixDeterministicAndCovers is the acceptance gate: the default
// 24-scenario matrix passes wholesale, two same-seed suite runs marshal
// to byte-identical JSON reports, and the corpus coverage spans every
// required behavior axis.
func TestMatrixDeterministicAndCovers(t *testing.T) {
	rep := RunMatrix(1, 24)
	if rep.Failed != 0 {
		t.Fatalf("24-scenario matrix: %d failed\n%s", rep.Failed, rep.Render())
	}
	again := RunMatrix(1, 24)
	a, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(again)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two same-seed suite runs produced different JSON reports")
	}
	for _, axis := range []string{
		"swap:incremental", "storage:cache", "faults", "gang-admission",
		"branching", "workload:quorum", "workload:commit2pc", "epochs",
		"federation", "federation:migration",
	} {
		if rep.Coverage[axis] == 0 {
			t.Errorf("matrix coverage misses %s: %v", axis, rep.Coverage)
		}
	}
}

// TestFederationScenarioUnderSuite: a federation scenario has no
// cluster to audit, so its suite verdict carries the replay-digest
// invariant plus the federation ledger audit — and still passes.
func TestFederationScenarioUnderSuite(t *testing.T) {
	f := &scenario.File{
		Name: "fed", Seed: 3, RunFor: "20m",
		Federation: &scenario.Federation{
			Facilities: 2, Tenants: 48, Migration: true, WarmUp: true,
		},
		Assertions: []scenario.Assertion{{Type: "all_completed"}},
	}
	rr := RunOne(f, "test")
	if !rr.Pass {
		t.Fatalf("federation suite run failed: %+v", rr)
	}
	names := map[string]bool{}
	for _, inv := range rr.Invariants {
		names[inv.Name] = true
		if !inv.Ok {
			t.Errorf("invariant %s failed: %s", inv.Name, inv.Detail)
		}
	}
	if !names["replay-digest"] || !names["federation-ledgers"] {
		t.Fatalf("missing federation invariants: %v", names)
	}

	// Non-vacuity: a corrupted ledger must be flagged.
	fr := *rr.Result.Federation
	fr.Completed = fr.Tenants + 1
	if inv := checkFederation(&fr); inv.Ok {
		t.Fatal("over-complete fleet not flagged")
	}
	fr = *rr.Result.Federation
	fr.Windows = 0
	if inv := checkFederation(&fr); inv.Ok {
		t.Fatal("zero-window run not flagged")
	}
}

// tamperCluster runs a minimal scenario and hands back its live cluster
// for the non-vacuity tests to corrupt.
func tamperCluster(t *testing.T) *emucheck.Cluster {
	t.Helper()
	f := &scenario.File{
		Name: "tamper", Seed: 1, Pool: 1, RunFor: "30s",
		Experiments: []scenario.Experiment{
			{Name: "e", Workload: "sleeploop", Nodes: []scenario.Node{{Name: "e-n0", Swappable: true}}},
		},
	}
	_, c, err := scenario.RunWithCluster(f)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestInvariantsAreNotVacuous corrupts each audited ledger on a healthy
// cluster and demands the matching invariant actually fail — a check
// that can't fire is worse than none.
func TestInvariantsAreNotVacuous(t *testing.T) {
	t.Run("hardware-leak", func(t *testing.T) {
		c := tamperCluster(t)
		if inv := checkHardware(c); !inv.Ok {
			t.Fatalf("healthy cluster flagged: %s", inv.Detail)
		}
		c.TB.FreeNodes = -1
		if inv := checkHardware(c); inv.Ok {
			t.Fatal("negative free-node count not flagged")
		}
	})
	t.Run("bus-conservation", func(t *testing.T) {
		c := tamperCluster(t)
		if inv := checkBus(c); !inv.Ok {
			t.Fatalf("healthy cluster flagged: %s", inv.Detail)
		}
		c.TB.Bus.Delivered = c.TB.Bus.Attempts + 1
		if inv := checkBus(c); inv.Ok {
			t.Fatal("phantom delivery (delivered > attempts) not flagged")
		}
	})
	t.Run("chain-refcounts", func(t *testing.T) {
		c := tamperCluster(t)
		if inv := checkChains(c); !inv.Ok {
			t.Fatalf("healthy cluster flagged: %s", inv.Detail)
		}
		// A lineage no tenant owns commits an epoch: its entry is
		// unreachable from any live lineage the suite can see.
		c.Chains.NewLineage(0).Commit(map[int64]int64{0: 1 << 20}, 4)
		if inv := checkChains(c); inv.Ok {
			t.Fatal("orphaned chain entry not flagged")
		}
	})
	t.Run("ledgers", func(t *testing.T) {
		c := tamperCluster(t)
		if inv := checkLedgers(c); !inv.Ok {
			t.Fatalf("healthy cluster flagged: %s", inv.Detail)
		}
		c.Sched.Preemptions = -1
		if inv := checkLedgers(c); inv.Ok {
			t.Fatal("negative scheduler counter not flagged")
		}
	})
}

// TestQuorumScenarioDeterministicUnderLeaderCrash is the quorum
// determinism regression: the runner always crash-stops the
// first-elected leader mid-run, and two same-seed runs must still
// produce byte-identical result digests.
func TestQuorumScenarioDeterministicUnderLeaderCrash(t *testing.T) {
	f := scengen.Generate(1, 4) // index 4 = quorum shape
	if !strings.HasSuffix(f.Name, "quorum") {
		t.Fatalf("expected quorum shape at index 4, got %s", f.Name)
	}
	a, b := RunOne(f, "a"), RunOne(f, "b")
	if a.Error != "" || !a.Pass {
		t.Fatalf("quorum scenario failed: %+v", a)
	}
	if a.Digest != b.Digest {
		t.Fatalf("same-seed quorum digests differ: %s vs %s", a.Digest, b.Digest)
	}
	out := a.Result.Experiments[0].Outcome
	if !strings.HasPrefix(out, "leader=") {
		t.Fatalf("quorum run ended without a re-elected leader: outcome %q", out)
	}
}

// TestCommit2PCScenarioDeterministicUnderCoordinatorCrash scans
// generator seeds for a 2PC run whose coordinator crash-stops between
// prepare and decision (half the seed space does), then demands the
// blocked run replay to an identical digest.
func TestCommit2PCScenarioDeterministicUnderCoordinatorCrash(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		f := scengen.Generate(seed, 5) // index 5 = commit2pc shape
		rr := RunOne(f, "scan")
		if rr.Error != "" || !rr.Pass {
			t.Fatalf("seed %d: 2PC scenario failed: %+v", seed, rr)
		}
		if !strings.HasPrefix(rr.Result.Experiments[0].Outcome, "blocked ") {
			continue
		}
		again := RunOne(f, "scan")
		if rr.Digest != again.Digest {
			t.Fatalf("seed %d: blocked 2PC digests differ: %s vs %s", seed, rr.Digest, again.Digest)
		}
		return
	}
	t.Fatal("no generator seed in 1..8 produced a coordinator crash; crash axis looks dead")
}

// TestJUnitXML pins the JUnit rendering: well-formed XML, one testcase
// per run, failures and errors attributed, simulated-seconds time
// attributes.
func TestJUnitXML(t *testing.T) {
	rep := &Report{
		Schema: Schema,
		Runs: []RunReport{
			{Name: "ok", Source: "examples/scenarios/ok.json", Pass: true, SimSeconds: 240, Digest: "feed"},
			{Name: "bad", Source: "generated", Pass: false, SimSeconds: 60,
				Invariants: []InvariantCheck{{Name: "ledgers", Ok: false, Detail: "utilization 2.0000 outside [0, 1]"}}},
			{Name: "broken", Source: "generated", Error: "scenario invalid: pool must be positive"},
		},
		Passed: 1, Failed: 2,
	}
	data, err := rep.JUnit("emusuite")
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		XMLName  xml.Name `xml:"testsuite"`
		Tests    int      `xml:"tests,attr"`
		Failures int      `xml:"failures,attr"`
		Errors   int      `xml:"errors,attr"`
		Cases    []struct {
			Name      string `xml:"name,attr"`
			Classname string `xml:"classname,attr"`
			Time      string `xml:"time,attr"`
			Failure   *struct {
				Message string `xml:"message,attr"`
			} `xml:"failure"`
			Error *struct {
				Message string `xml:"message,attr"`
			} `xml:"error"`
		} `xml:"testcase"`
	}
	if err := xml.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("JUnit output does not parse: %v\n%s", err, data)
	}
	if parsed.Tests != 3 || parsed.Failures != 1 || parsed.Errors != 1 {
		t.Fatalf("counts tests=%d failures=%d errors=%d, want 3/1/1", parsed.Tests, parsed.Failures, parsed.Errors)
	}
	if got := parsed.Cases[0].Classname; got != "emusuite.examples.scenarios.ok" {
		t.Errorf("file-run classname %q", got)
	}
	if got := parsed.Cases[0].Time; got != "240.000" {
		t.Errorf("time attr %q, want simulated seconds 240.000", got)
	}
	if parsed.Cases[1].Failure == nil || !strings.Contains(parsed.Cases[1].Failure.Message, "ledgers") {
		t.Errorf("failed run missing failure element: %+v", parsed.Cases[1])
	}
	if parsed.Cases[2].Error == nil || parsed.Cases[2].Error.Message != "scenario did not run" {
		t.Errorf("errored run missing error element: %+v", parsed.Cases[2])
	}
}
