package evalrun

import (
	"encoding/json"
	"testing"
)

// TestRemediateAutoBeatsRestartQuick pins the benchmark's acceptance
// comparison: the unattended loop must strictly beat restart-from-
// scratch on both MTTR and lost work, detect within the preset's
// hysteresis bound, and land within a handful of seconds of the
// scripted-recovery oracle.
func TestRemediateAutoBeatsRestartQuick(t *testing.T) {
	r := Remediate(1, true)
	auto, scripted, restart := r.Row("auto@balanced"), r.Row("scripted"), r.Row("restart")
	if auto == nil || scripted == nil || restart == nil {
		t.Fatalf("missing modes in %+v", r.Rows)
	}
	if !auto.Recovered || auto.Remediations < 1 {
		t.Fatalf("unattended mode did not remediate: %+v", auto)
	}
	// Balanced preset: three consecutive 500ms probes plus sub-period
	// phase stagger.
	if auto.DetectS <= 0 || auto.DetectS > 2.5 {
		t.Fatalf("detect latency %.2fs outside (0, 2.5s]", auto.DetectS)
	}
	if auto.MTTRS >= restart.MTTRS {
		t.Fatalf("unattended MTTR %.0fs does not beat restart %.0fs", auto.MTTRS, restart.MTTRS)
	}
	if auto.LostWorkS >= restart.LostWorkS {
		t.Fatalf("unattended lost work %.1fs does not beat restart %.1fs", auto.LostWorkS, restart.LostWorkS)
	}
	// The loop's only handicap vs the operator oracle is detection
	// latency — seconds, not the oracle's whole advantage.
	if auto.MTTRS > scripted.MTTRS+10 {
		t.Fatalf("unattended MTTR %.0fs far behind scripted %.0fs", auto.MTTRS, scripted.MTTRS)
	}
}

// TestRemediateDeterministicQuick: the whole benchmark — probe timing,
// backoff, restore transfers — is a pure function of the seed.
func TestRemediateDeterministicQuick(t *testing.T) {
	enc := func() string {
		b, err := json.Marshal(Remediate(3, true))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if a, b := enc(), enc(); a != b {
		t.Fatalf("same-seed remediate runs diverged:\n%s\n%s", a, b)
	}
}
