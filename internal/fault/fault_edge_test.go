package fault

import (
	"fmt"
	"testing"

	"emucheck/internal/notify"
	"emucheck/internal/sim"
)

// TestOverlappingDelayWindowsAccumulate: a delivery falling inside two
// delay windows pays both latencies — overlap compounds, it does not
// shadow.
func TestOverlappingDelayWindowsAccumulate(t *testing.T) {
	s := sim.New(1)
	bus := notify.NewBus(s)
	bus.JitterMax = 0
	base := bus.BaseLatency
	p := &Plan{Injections: []Injection{
		{Kind: Delay, At: 0, Target: "e1", Extra: 5 * sim.Millisecond, Window: sim.Minute},
		{Kind: Delay, At: 0, Target: "e1", Extra: 7 * sim.Millisecond, Window: sim.Minute},
	}}
	p.Arm(s, bus, Hooks{})
	var at sim.Time
	bus.Subscribe(notify.TopicCheckpoint, func(*notify.Msg) { at = s.Now() })
	bus.Publish(&notify.Msg{Topic: notify.TopicCheckpoint, Scope: "e1"})
	s.Run()
	if want := base + 12*sim.Millisecond; at != want {
		t.Fatalf("delivered at %v, want %v (both windows applied)", at, want)
	}
	if p.Delayed != 2 {
		t.Fatalf("Delayed = %d, want 2 (one per window)", p.Delayed)
	}
}

// TestOverlappingDropBudgetsChain: when two drop windows overlap, a
// delivery is charged to the first window with budget left; the second
// window's budget takes over once the first exhausts.
func TestOverlappingDropBudgetsChain(t *testing.T) {
	s := sim.New(1)
	bus := notify.NewBus(s)
	p := &Plan{Injections: []Injection{
		{Kind: Drop, At: 0, Target: "e1", Count: 1, Window: sim.Minute},
		{Kind: Drop, At: 0, Target: "e1", Count: 1, Window: sim.Minute},
	}}
	p.Arm(s, bus, Hooks{})
	delivered := 0
	bus.Subscribe(notify.TopicCheckpoint, func(*notify.Msg) { delivered++ })
	for i := 0; i < 3; i++ {
		bus.Publish(&notify.Msg{Topic: notify.TopicCheckpoint, Scope: "e1"})
	}
	s.Run()
	if delivered != 1 || p.Dropped != 2 {
		t.Fatalf("delivered %d, dropped %d; want 1 delivered after both budgets drain", delivered, p.Dropped)
	}
	if p.Injections[0].remaining != 0 || p.Injections[1].remaining != 0 {
		t.Fatalf("budgets not both spent: %d, %d",
			p.Injections[0].remaining, p.Injections[1].remaining)
	}
}

// TestDropBudgetExhaustsMidWindow: a count-bounded drop that runs out
// of budget mid-window lets the rest of the window's deliveries
// through — exhaustion is permanent, not per-delivery.
func TestDropBudgetExhaustsMidWindow(t *testing.T) {
	s := sim.New(1)
	bus := notify.NewBus(s)
	p := &Plan{Injections: []Injection{{
		Kind: Drop, At: 0, Target: "e1", Count: 3, Window: sim.Hour,
	}}}
	p.Arm(s, bus, Hooks{})
	delivered := 0
	bus.Subscribe(notify.TopicCheckpoint, func(*notify.Msg) { delivered++ })
	publish := func(n int) {
		for i := 0; i < n; i++ {
			bus.Publish(&notify.Msg{Topic: notify.TopicCheckpoint, Scope: "e1"})
		}
		s.Run()
	}
	publish(5)
	if delivered != 2 || p.Dropped != 3 {
		t.Fatalf("after 5: delivered %d dropped %d, want 2/3", delivered, p.Dropped)
	}
	// Still deep inside the window: the spent budget must not refill.
	s.RunFor(10 * sim.Minute)
	publish(4)
	if delivered != 6 || p.Dropped != 3 {
		t.Fatalf("after 9: delivered %d dropped %d, want 6/3", delivered, p.Dropped)
	}
}

// TestFaultOnCrashedTenantCarriesOn: a crash injection aimed at a
// tenant an earlier injection already killed is rejected by the host,
// recorded, and the rest of the plan still runs.
func TestFaultOnCrashedTenantCarriesOn(t *testing.T) {
	s := sim.New(1)
	bus := notify.NewBus(s)
	p := &Plan{Injections: []Injection{
		{Kind: Crash, At: 5 * sim.Second, Target: "e1"},
		{Kind: Crash, At: 10 * sim.Second, Target: "e1"},
		{Kind: SlowDisk, At: 15 * sim.Second, Target: "e1", Node: "e1a"},
	}}
	down := map[string]bool{}
	slowed := false
	p.Arm(s, bus, Hooks{
		Crash: func(target, node string) error {
			if down[target] {
				return fmt.Errorf("tenant %s already crashed", target)
			}
			down[target] = true
			return nil
		},
		SlowDisk: func(string, string, float64, sim.Time) error { slowed = true; return nil },
	})
	s.Run()
	if p.Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1 (second crash hit a corpse)", p.Crashes)
	}
	if len(p.Errors) != 1 {
		t.Fatalf("Errors = %v, want exactly the rejected re-crash", p.Errors)
	}
	if !slowed || p.Slowed != 1 {
		t.Fatal("plan stopped after the rejected injection; later faults must still fire")
	}
}
