// Time travel (paper §6): catch a rare distributed bug by rolling the
// experiment back to a checkpoint just before the failure and replaying
// — deterministically to reproduce it, and with a perturbed seed to
// probe how fragile it is. Every replay grows a branch in the execution
// tree.
package main

import (
	"fmt"

	"emucheck"
	"emucheck/internal/emulab"
	"emucheck/internal/firewall"
	"emucheck/internal/guest"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

type firewallHandle = firewall.Handle

// buggyWorkload is a two-node protocol with a latent bug: the server
// mishandles a request that arrives in the same 10 ms window as its
// "cache flush" timer — a classic timing-dependent failure.
func buggyWorkload(failures *[]sim.Time) func(*emucheck.Session) {
	return func(s *emucheck.Session) {
		client, server := s.Kernel("client"), s.Kernel("server")
		flushing := false
		var flushLoop func()
		flushLoop = func() {
			flushing = true
			server.Compute(4*sim.Millisecond, "flush", func() {
				flushing = false
				server.Usleep(683*sim.Millisecond, flushLoop)
			})
		}
		// The flush grid drifts relative to the request grid, so the
		// collision is a rare mid-run event rather than a startup
		// artifact.
		server.Usleep(500*sim.Millisecond, flushLoop)
		server.Handle("op", func(from simnet.Addr, m *guest.Message) {
			if flushing {
				*failures = append(*failures, server.Monotonic())
				return // dropped on the floor: the bug
			}
			server.Send("client", 200, &guest.Message{Port: "ok"})
		})
		var issue func()
		var retry *firewallHandle
		client.Handle("ok", func(simnet.Addr, *guest.Message) {
			client.CancelTimer(retry)
			client.Usleep(33*sim.Millisecond, issue)
		})
		issue = func() {
			client.Send("server", 200, &guest.Message{Port: "op"})
			// Application-level retry so a dropped request is a logged
			// failure, not a dead experiment.
			retry = client.AfterVirtual(500*sim.Millisecond, "retry", issue)
		}
		issue()
	}
}

func spec() emulab.Spec {
	return emulab.Spec{
		Name: "bughunt",
		Nodes: []emulab.NodeSpec{
			{Name: "client", Swappable: true},
			{Name: "server", Swappable: true},
		},
		Links: []emulab.LinkSpec{
			{A: "client", B: "server", Bandwidth: 100 * simnet.Mbps, Delay: sim.Millisecond},
		},
	}
}

func main() {
	var failures []sim.Time
	sc := emucheck.Scenario{Spec: spec(), Setup: buggyWorkload(&failures)}

	// Original run with frequent transparent checkpoints — cheap because
	// they are incremental, safe because the system under test cannot
	// tell (so the bug is not heisenberged away).
	s := emucheck.NewSession(sc, 99)
	s.PeriodicCheckpoints(2*sim.Second, 0)
	s.RunFor(30 * sim.Second)
	if len(failures) == 0 {
		fmt.Println("no failure in this run; try another seed")
		return
	}
	first := failures[0]
	fmt.Printf("original run: %d dropped requests; first at virtual %v\n", len(failures), first)
	fmt.Printf("checkpoint tree: %d nodes recorded during the run\n", s.Tree.Len())

	// Find the checkpoint just before the failure.
	var target emucheck.TreeNodeID
	for id := emucheck.TreeNodeID(1); ; id++ {
		n, ok := s.Tree.Get(id)
		if !ok {
			break
		}
		if n.VirtualTime < first {
			target = id
		}
	}
	tn, _ := s.Tree.Get(target)
	fmt.Printf("rolling back to checkpoint %d (virtual %v, %.1f MB image) ...\n",
		target, tn.VirtualTime, float64(tn.Bytes)/(1<<20))

	// Deterministic replay: the failure reproduces at the same instant.
	var replayFailures []sim.Time
	s.Scenario = emucheck.Scenario{Spec: spec(), Setup: buggyWorkload(&replayFailures)}
	replay, err := s.Rollback(target, emucheck.Perturbation{Kind: emucheck.Deterministic})
	if err != nil {
		panic(err)
	}
	replay.RunFor(first - tn.VirtualTime + sim.Second)
	fmt.Printf("deterministic replay: failure reproduced at %v (original %v)\n",
		replayFailures[len(replayFailures)-1], first)

	// Perturbed replay: turn the non-determinism knob up (§6) and see if
	// the bug still manifests under different timing.
	var perturbed []sim.Time
	replay.Scenario = emucheck.Scenario{Spec: spec(), Setup: buggyWorkload(&perturbed)}
	branch, err := replay.Rollback(target, emucheck.Perturbation{Kind: emucheck.SeedChange, Seed: 1234})
	if err != nil {
		panic(err)
	}
	branch.RunFor(10 * sim.Second)
	fmt.Printf("perturbed replay (new seed): %d failures — the bug is timing-dependent but real\n",
		len(perturbed))
	fmt.Printf("execution tree now has %d leaves (branches explored)\n", len(branch.Tree.Leaves()))
}
