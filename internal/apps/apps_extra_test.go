package apps

import (
	"testing"

	"emucheck/internal/guest"
	"emucheck/internal/node"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

// TestIperfDetectsLoss is the negative control for Fig. 6's "no
// retransmissions" check: on a genuinely lossy link the trace MUST show
// retransmissions, proving the detector is live and the clean traces in
// the checkpoint experiments are meaningful.
func TestIperfDetectsLoss(t *testing.T) {
	s := sim.New(1)
	p := node.DefaultParams()
	ma := node.NewMachine(s, "snd", p)
	mb := node.NewMachine(s, "rcv", p)
	ka := guest.New(ma, p, guest.DefaultConfig())
	kb := guest.New(mb, p, guest.DefaultConfig())
	wa := simnet.NewWire(s, sim.Millisecond, mb.ExpNIC)
	wa.SetLoss(0.005)
	ma.ExpNIC.Attach(wa)
	mb.ExpNIC.Attach(simnet.NewWire(s, sim.Millisecond, ma.ExpNIC))
	ip := NewIperf(ka, kb)
	ip.Start(8 << 20)
	s.RunFor(60 * sim.Second)
	if ip.CleanTrace() {
		t.Fatal("0.5% loss produced a clean trace: the detector is dead")
	}
	if ip.Sender.Retransmits == 0 {
		t.Fatal("no retransmissions under loss")
	}
	if !ip.Sender.Done() {
		t.Fatalf("TCP failed to recover: %d/%d", ip.Sender.Acked(), 8<<20)
	}
}

func TestSleepLoopAcrossLocalCheckpoint(t *testing.T) {
	s, k := oneKernel(2)
	a := NewSleepLoop(k, 100)
	a.Run(nil)
	s.RunFor(500 * sim.Millisecond)
	k.Suspend(func() {})
	s.RunFor(5 * sim.Second)
	k.Resume(nil)
	s.RunFor(10 * sim.Second)
	if a.Times.Len() != 100 {
		t.Fatalf("iterations = %d", a.Times.Len())
	}
	if worst := a.Times.Max(); worst > 20.5*float64(sim.Millisecond) {
		t.Fatalf("worst iteration %.3f ms across a 5 s checkpoint", worst/float64(sim.Millisecond))
	}
}

func TestCPULoopIterationJitterBaseline(t *testing.T) {
	s, k := oneKernel(3)
	a := NewCPULoop(k, 30)
	a.Run(nil)
	s.RunFor(30 * sim.Second)
	// With no dom0 activity at all, iterations are exact.
	for i, v := range a.Times.Values() {
		if sim.Time(v) != 236600*sim.Microsecond {
			t.Fatalf("iteration %d = %v with idle dom0", i, sim.Time(v))
		}
	}
}

func TestBonnieRewriteSlowerOnCOWDueToLogSeeks(t *testing.T) {
	// Rewrites alternate reads (from the written region) and writes (to
	// the log head); on the COW store these are distant, costing seeks.
	s := sim.New(4)
	p := node.DefaultParams()
	m := node.NewMachine(s, "d", p)
	k := guest.New(m, p, guest.DefaultConfig())
	b := NewBonnie(k)
	b.FileBytes = 32 << 20
	var write, rewrite float64
	done := 0
	b.Run(BlockWrites, func(mbps float64) { write = mbps; done++ })
	s.RunFor(sim.Hour)
	b.Run(BlockRewrites, func(mbps float64) { rewrite = mbps; done++ })
	s.RunFor(sim.Hour)
	if done != 2 {
		t.Fatal("bonnie incomplete")
	}
	if rewrite >= write {
		t.Fatalf("rewrite %.1f not slower than write %.1f", rewrite, write)
	}
}

func TestFileCopySecondBucketsCoverRun(t *testing.T) {
	s, k := oneKernel(5)
	fc := NewFileCopy(k, 32<<20)
	fc.Run(nil)
	s.RunFor(sim.Minute)
	var total float64
	for _, smp := range fc.Throughput.Samples {
		total += smp.V
	}
	if total < 31 || total > 33 {
		t.Fatalf("throughput buckets sum to %.1f MB for a 32 MB copy", total)
	}
}

func TestBitTorrentCompletionIdempotent(t *testing.T) {
	s, ks := linkedKernels(6, []string{"seeder", "c1"}, 100*simnet.Mbps)
	bt := NewBitTorrent(ks[0], ks[1:], 4<<20)
	bt.UploadPace = 0 // as fast as TCP allows
	bt.Start()
	s.RunFor(5 * sim.Minute)
	if !bt.AllComplete() {
		t.Fatalf("single client incomplete: %d/%d", bt.CountHave("c1"), bt.Pieces)
	}
	// A duplicate announce after completion must not wedge anything.
	bt.Start()
	s.RunFor(sim.Second)
}
