package evalrun

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"time"

	"emucheck/internal/metrics"
	"emucheck/internal/notify"
	"emucheck/internal/sched"
	"emucheck/internal/sim"
)

// ScaleRow is one fleet size's outcome: a seeded synthetic tenant
// population driven through the scheduler/event hot path (admission,
// preemption, voluntary park/unpark cycles, per-tenant activity ticks,
// scoped control-LAN traffic), with the scheduler's decision work
// wall-clocked. Simulation-domain fields (everything the Digest
// covers) are bit-deterministic under the seed; wall-clock fields
// (wall_ms, mean_decision_us, *_per_wall_ms) measure this machine.
type ScaleRow struct {
	Tenants int `json:"tenants"`
	Pool    int `json:"pool"`
	// Oversub is tenant demand over pool capacity (Need=1 per tenant).
	Oversub   float64 `json:"oversubscription"`
	Completed int     `json:"completed"`
	SimS      float64 `json:"sim_s"`
	WallMS    float64 `json:"wall_ms"`
	// Events counts simulator events delivered; Ticks counts tenant
	// activity ticks (the workload's unit of useful progress).
	Events uint64 `json:"events"`
	Ticks  int64  `json:"ticks"`
	// Published/Delivered count scoped control-LAN bus traffic.
	Published      uint64 `json:"published"`
	Delivered      uint64 `json:"delivered"`
	Admissions     int    `json:"admissions"`
	Preemptions    int    `json:"preemptions"`
	GangAdmissions int    `json:"gang_admissions"`
	// Decisions = Admissions + Preemptions; MeanDecisionUS is the mean
	// wall-clock microseconds of scheduler work per decision
	// (DecisionNanos / Decisions) — the quantity that must stay flat as
	// the fleet grows for the indexed hot path to count as sub-linear.
	Decisions      int     `json:"decisions"`
	MeanDecisionUS float64 `json:"mean_decision_us"`
	MeanWaitS      float64 `json:"mean_queue_wait_s"`
	Utilization    float64 `json:"utilization"`
	// Throughput normalizations for the trajectory: simulated progress
	// per wall millisecond.
	EventsPerWallMS float64 `json:"events_per_wall_ms"`
	TicksPerWallMS  float64 `json:"ticks_per_wall_ms"`
	// Digest is an FNV-64a over the run's simulation-domain outcome
	// (final clock, event count, scheduler ledgers, per-tenant stats in
	// submit order). Same seed + same fleet size must reproduce it
	// byte for byte, on any machine.
	Digest string `json:"digest"`
}

// ScaleResult is the oversubscription-at-scale benchmark: the same
// synthetic fleet recipe instantiated at increasing tenant counts over
// a pool that stops growing at 256 nodes, so the large sizes measure
// genuine oversubscription (docs/scale.md).
type ScaleResult struct {
	Seed int64      `json:"seed"`
	Rows []ScaleRow `json:"rows"`
}

// scalePool sizes the hardware pool for n tenants: a quarter of the
// fleet, floored at 4 and capped at 256 — past the cap, adding tenants
// adds contention, not capacity, which is exactly the regime the
// indexed scheduler hot path exists for.
func scalePool(n int) int {
	p := n / 4
	if p < 4 {
		p = 4
	}
	if p > 256 {
		p = 256
	}
	return p
}

// scaleHorizon bounds one fleet run. Generous: the 10k-tenant fleet's
// aggregate service demand over a 256-node pool needs ~11 simulated
// minutes of pure service; a run that has not drained by the horizon
// still produces a valid (deterministic) row.
const scaleHorizon = 20 * sim.Minute

// scaleFleet is one synthetic tenant population wired to a scheduler
// and a scoped notification bus on a shared simulator.
type scaleFleet struct {
	s   *sim.Simulator
	d   *sched.Scheduler
	bus *notify.Bus

	tenants []*scaleTenant
	ticks   int64
}

// scaleTenant is one synthetic experiment. Two species, mixed 4:1:
//
//   - bursty (80%): works a ~3 s burst of 100 ms activity ticks, then
//     voluntarily parks and sleeps ~5-7 s, for a few cycles — the
//     paper's mostly-idle tenant, exercising park/unpark churn.
//   - hog (20%): ticks until its owed work is done, never yielding —
//     the tenant preemption exists for.
//
// All per-tenant parameters derive arithmetically from the submit
// index (no RNG draws), so the workload shape is identical across
// seeds and the simulator's RNG stream is consumed only by bus
// delivery jitter.
type scaleTenant struct {
	f    *scaleFleet
	idx  int
	name string
	hog  bool
	job  *sched.Job

	// timer drives both activity ticks (while running) and the idle
	// wake-up (while voluntarily parked) — one event allocation for the
	// tenant's whole life.
	timer    *sim.Timer
	interval sim.Time

	burstLen int      // bursty: ticks per burst
	cycles   int      // bursty: bursts before finishing
	idleDur  sim.Time // bursty: sleep between bursts
	owed     int      // hog: total ticks before finishing

	ticks      int
	burstTicks int
	cycle      int
	sleeping   bool // parked voluntarily; timer means "wake up"
	deliveries int
	cancels    []func()
}

func (f *scaleFleet) newTenant(idx int) *scaleTenant {
	t := &scaleTenant{
		f: f, idx: idx,
		name:     fmt.Sprintf("t%d", idx),
		hog:      idx%5 == 4,
		interval: 100*sim.Millisecond + sim.Time(idx%7)*3*sim.Millisecond,
	}
	if t.hog {
		t.owed = 120 + (idx%50)*3
	} else {
		t.burstLen = 24 + idx%8
		t.cycles = 2 + idx%3
		t.idleDur = 5*sim.Second + sim.Time(idx%5)*500*sim.Millisecond
	}
	t.timer = f.s.NewTimer("fleet.tick", t.fire)
	t.job = &sched.Job{
		Name: t.name, Need: 1, Preemptible: true,
		Hooks: sched.Hooks{
			// Fixed-delay mechanism stubs: the fleet measures the
			// scheduler/event hot path, not swap transfer costs.
			Start: func(done func(error)) {
				f.s.DoAfter(2*sim.Second, "fleet.start", func() {
					done(nil)
					t.timer.Reset(t.interval)
				})
			},
			Park: func(done func(error)) {
				f.s.DoAfter(sim.Second, "fleet.park", func() {
					t.timer.Stop()
					done(nil)
					if t.sleeping {
						t.timer.Reset(t.idleDur)
					}
				})
			},
			Resume: func(done func(error)) {
				f.s.DoAfter(1500*sim.Millisecond, "fleet.resume", func() {
					done(nil)
					t.timer.Reset(t.interval)
				})
			},
			ParkCost: func() int64 { return int64(1+t.idx%16) << 20 },
		},
	}
	// Two scoped subscribers per tenant (a daemon pair), so every
	// publish fans out within the tenant's scope only — the indexed
	// bus's whole point at fleet scale.
	for k := 0; k < 2; k++ {
		t.cancels = append(t.cancels, f.bus.SubscribeScoped("activity", t.name, t.name, func(*notify.Msg) {
			t.deliveries++
		}))
	}
	f.tenants = append(f.tenants, t)
	return t
}

// fire is the tenant's timer callback: an idle wake-up when sleeping,
// an activity tick when running, a no-op in transit (the admission or
// park hook re-arms it).
func (t *scaleTenant) fire() {
	f := t.f
	if t.sleeping {
		t.sleeping = false
		if err := f.d.Unpark(t.name); err != nil {
			panic("scale: unpark " + t.name + ": " + err.Error())
		}
		return
	}
	if t.job.State() != sched.Running {
		return
	}
	t.ticks++
	f.ticks++
	f.d.Touch(t.name)
	if t.ticks%8 == 0 {
		f.bus.Publish(&notify.Msg{Topic: "activity", From: t.name, Scope: t.name})
	}
	if t.hog {
		if t.ticks >= t.owed {
			t.finish()
			return
		}
	} else {
		t.burstTicks++
		if t.burstTicks >= t.burstLen {
			t.burstTicks = 0
			t.cycle++
			if t.cycle >= t.cycles {
				t.finish()
				return
			}
			t.sleeping = true
			if err := f.d.Park(t.name); err != nil {
				panic("scale: park " + t.name + ": " + err.Error())
			}
			return
		}
	}
	t.timer.Reset(t.interval)
}

func (t *scaleTenant) finish() {
	t.timer.Stop()
	for _, cancel := range t.cancels {
		cancel()
	}
	if err := t.f.d.Finish(t.name); err != nil {
		panic("scale: finish " + t.name + ": " + err.Error())
	}
}

// digest folds the run's simulation-domain outcome into a hex FNV-64a.
func (f *scaleFleet) digest() string {
	h := fnv.New64a()
	w := func(vs ...int64) {
		var b [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(b[:], uint64(v))
			h.Write(b[:])
		}
	}
	w(int64(f.s.Now()), int64(f.s.Fired()),
		int64(f.d.Admissions), int64(f.d.Preemptions), int64(f.d.GangAdmissions),
		f.d.PreemptedBytes, int64(f.d.MeanQueueWait()), f.ticks,
		int64(f.bus.Published), int64(f.bus.Delivered))
	for _, t := range f.tenants {
		w(int64(t.job.State()), int64(t.job.Admissions()), int64(t.job.Preemptions()),
			int64(t.ticks), int64(t.deliveries), int64(t.job.QueueWait()))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// runScaleFleet instantiates the fleet recipe at n tenants and runs it
// to completion or the horizon.
func runScaleFleet(seed int64, n int) ScaleRow {
	pool := scalePool(n)
	s := sim.New(seed)
	d := sched.New(s, pool, sched.IdleFirst)
	d.MinResidency = 5 * sim.Second
	d.Instrument = true
	f := &scaleFleet{s: s, d: d, bus: notify.NewBus(s)}

	// Every 50th slot submits a co-scheduled gang of four instead of a
	// single tenant, so gang admission stays on the measured path.
	start := time.Now()
	i := 0
	for i < n {
		if i%50 == 0 && i+4 <= n {
			var jobs []*sched.Job
			for k := 0; k < 4; k++ {
				jobs = append(jobs, f.newTenant(i+k).job)
			}
			if err := d.SubmitGang(jobs); err != nil {
				panic("scale: gang: " + err.Error())
			}
			i += 4
			continue
		}
		if err := d.Submit(f.newTenant(i).job); err != nil {
			panic("scale: submit: " + err.Error())
		}
		i++
	}
	for s.Now() < scaleHorizon && !d.AllDone() {
		s.RunFor(5 * sim.Second)
	}
	wall := time.Since(start)

	row := ScaleRow{
		Tenants: n, Pool: pool,
		Oversub:        float64(n) / float64(pool),
		SimS:           s.Now().Seconds(),
		WallMS:         float64(wall.Nanoseconds()) / 1e6,
		Events:         s.Fired(),
		Ticks:          f.ticks,
		Published:      f.bus.Published,
		Delivered:      f.bus.Delivered,
		Admissions:     d.Admissions,
		Preemptions:    d.Preemptions,
		GangAdmissions: d.GangAdmissions,
		Decisions:      d.Admissions + d.Preemptions,
		MeanWaitS:      d.MeanQueueWait().Seconds(),
		Utilization:    d.Utilization(),
		Digest:         f.digest(),
	}
	for _, t := range f.tenants {
		if t.job.State() == sched.Done {
			row.Completed++
		}
	}
	if row.Decisions > 0 {
		row.MeanDecisionUS = float64(d.DecisionNanos) / 1e3 / float64(row.Decisions)
	}
	if ms := row.WallMS; ms > 0 {
		row.EventsPerWallMS = float64(row.Events) / ms
		row.TicksPerWallMS = float64(row.Ticks) / ms
	}
	return row
}

// Scale runs the fleet recipe at each size and reports the tenant
// count vs throughput / decision-cost trajectory.
func Scale(seed int64, sizes []int) *ScaleResult {
	if len(sizes) == 0 {
		sizes = []int{16, 128, 1000, 10000}
	}
	r := &ScaleResult{Seed: seed}
	for _, n := range sizes {
		r.Rows = append(r.Rows, runScaleFleet(seed, n))
	}
	return r
}

// Render prints the trajectory.
func (r *ScaleResult) Render() string {
	t := &metrics.Table{Header: []string{
		"tenants", "pool", "oversub", "done", "sim (s)", "wall (ms)",
		"events", "ticks", "adm", "preempt", "us/decision", "wait (s)", "util %", "digest"}}
	for _, row := range r.Rows {
		t.AddRow(row.Tenants, row.Pool, fmt.Sprintf("%.1fx", row.Oversub),
			fmt.Sprintf("%d/%d", row.Completed, row.Tenants),
			fmt.Sprintf("%.0f", row.SimS), fmt.Sprintf("%.0f", row.WallMS),
			row.Events, row.Ticks, row.Admissions, row.Preemptions,
			fmt.Sprintf("%.2f", row.MeanDecisionUS), fmt.Sprintf("%.1f", row.MeanWaitS),
			fmt.Sprintf("%.0f", row.Utilization*100), row.Digest)
	}
	s := fmt.Sprintf("seed %d; pool = clamp(tenants/4, 4, 256); 80%% bursty / 20%% hog tenants, a 4-gang every 50th slot\n", r.Seed)
	return s + t.String()
}
