// Package metrics provides the measurement containers used by the
// evaluation harness: time series, percentile summaries, and windowed
// throughput aggregation matching the plots in the paper.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"emucheck/internal/sim"
)

// Sample is one (time, value) observation.
type Sample struct {
	T sim.Time
	V float64
}

// Series is an append-only time series.
type Series struct {
	Name    string
	Samples []Sample
}

// NewSeries creates an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends an observation.
func (s *Series) Add(t sim.Time, v float64) { s.Samples = append(s.Samples, Sample{t, v}) }

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.Samples) }

// Values returns just the observation values, in order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Samples))
	for i, smp := range s.Samples {
		out[i] = smp.V
	}
	return out
}

// Mean reports the arithmetic mean of the values, or 0 for an empty series.
func (s *Series) Mean() float64 { return Mean(s.Values()) }

// Min reports the smallest value, or +Inf for an empty series.
func (s *Series) Min() float64 {
	m := math.Inf(1)
	for _, smp := range s.Samples {
		if smp.V < m {
			m = smp.V
		}
	}
	return m
}

// Max reports the largest value, or -Inf for an empty series.
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, smp := range s.Samples {
		if smp.V > m {
			m = smp.V
		}
	}
	return m
}

// Between returns the sub-series with lo <= T < hi.
func (s *Series) Between(lo, hi sim.Time) *Series {
	out := NewSeries(s.Name)
	for _, smp := range s.Samples {
		if smp.T >= lo && smp.T < hi {
			out.Add(smp.T, smp.V)
		}
	}
	return out
}

// Mean reports the arithmetic mean of vs, or 0 when empty.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Stddev reports the population standard deviation of vs.
func Stddev(vs []float64) float64 {
	if len(vs) < 2 {
		return 0
	}
	m := Mean(vs)
	var ss float64
	for _, v := range vs {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(vs)))
}

// Percentile reports the p-th percentile (0..100) of vs using
// nearest-rank on a sorted copy. Empty input yields 0.
func Percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	c := append([]float64(nil), vs...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(c)))) - 1
	if rank < 0 {
		rank = 0
	}
	return c[rank]
}

// FractionWithin reports the fraction of values v with |v-center| <= tol.
func FractionWithin(vs []float64, center, tol float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	n := 0
	for _, v := range vs {
		if math.Abs(v-center) <= tol {
			n++
		}
	}
	return float64(n) / float64(len(vs))
}

// Throughput converts an event series (time, bytes) into a windowed
// throughput series in MB/s, matching the 20 ms-bucket averaging used for
// the paper's iperf plot (Figure 6).
func Throughput(events *Series, window sim.Time) *Series {
	out := NewSeries(events.Name + "/throughput")
	if events.Len() == 0 || window <= 0 {
		return out
	}
	end := events.Samples[len(events.Samples)-1].T
	first := events.Samples[0].T / window * window
	i := 0
	for start := first; start <= end; start += window {
		var bytes float64
		for i < len(events.Samples) && events.Samples[i].T < start+window {
			bytes += events.Samples[i].V
			i++
		}
		mbps := bytes / (1 << 20) / window.Seconds()
		out.Add(start, mbps)
	}
	return out
}

// InterArrivals computes successive T deltas of a series, in sim.Time.
func InterArrivals(s *Series) []sim.Time {
	if s.Len() < 2 {
		return nil
	}
	out := make([]sim.Time, 0, s.Len()-1)
	for i := 1; i < len(s.Samples); i++ {
		out = append(out, s.Samples[i].T-s.Samples[i-1].T)
	}
	return out
}

// Histogram is a fixed-bucket histogram over float64 values.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	Under   int
	Over    int
	width   float64
}

// NewHistogram creates a histogram with n equal buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("metrics: bad histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n), width: (hi - lo) / float64(n)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	switch {
	case v < h.Lo:
		h.Under++
	case v >= h.Hi:
		h.Over++
	default:
		h.Buckets[int((v-h.Lo)/h.width)]++
	}
}

// Total reports the number of observed values including out-of-range.
func (h *Histogram) Total() int {
	n := h.Under + h.Over
	for _, b := range h.Buckets {
		n += b
	}
	return n
}

// Counters is a set of named monotonic accumulators (byte and event
// counts) with deterministic iteration order — the container swap and
// scheduling layers use to surface delta-vs-full transfer volumes to
// reports and scenario assertions.
type Counters struct {
	names []string
	vals  map[string]int64
}

// NewCounters creates an empty counter set.
func NewCounters() *Counters { return &Counters{vals: make(map[string]int64)} }

// Add accumulates n into the named counter (created at zero on first use).
func (c *Counters) Add(name string, n int64) {
	if _, ok := c.vals[name]; !ok {
		c.names = append(c.names, name)
	}
	c.vals[name] += n
}

// Get reports a counter's value (zero if never touched).
func (c *Counters) Get(name string) int64 { return c.vals[name] }

// Names returns counter names in first-touch order.
func (c *Counters) Names() []string { return append([]string(nil), c.names...) }

// String renders the counters as an aligned table.
func (c *Counters) String() string {
	t := &Table{Header: []string{"counter", "value"}}
	for _, name := range c.names {
		t.AddRow(name, c.vals[name])
	}
	return t.String()
}

// Table renders aligned rows for the benchmark harness output.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with column alignment.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
