// Command emucp drives the simulated testbed interactively from the
// command line: it swaps in a demo experiment, runs workloads, takes
// transparent checkpoints, performs stateful swap cycles, and walks the
// time-travel tree, narrating what the experiment observed.
//
// Usage:
//
//	emucp checkpoint   # run + 3 transparent distributed checkpoints
//	emucp swap         # stateful swap-out / swap-in cycle
//	emucp timetravel   # rollback and branch a run
//	emucp demo         # all of the above
package main

import (
	"flag"
	"fmt"
	"os"

	"emucheck"
	"emucheck/internal/apps"
	"emucheck/internal/emulab"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

func scenario() emucheck.Scenario {
	return emucheck.Scenario{
		Spec: emulab.Spec{
			Name: "emucp-demo",
			Nodes: []emulab.NodeSpec{
				{Name: "client", Swappable: true},
				{Name: "server", Swappable: true},
			},
			Links: []emulab.LinkSpec{{
				A: "client", B: "server",
				Bandwidth: 100 * simnet.Mbps,
				Delay:     10 * sim.Millisecond,
			}},
		},
	}
}

func checkpointDemo(seed int64) {
	sc := scenario()
	var loop *apps.SleepLoop
	sc.Setup = func(s *emucheck.Session) {
		loop = apps.NewSleepLoop(s.Kernel("client"), 1200)
		loop.Run(nil)
	}
	s := emucheck.NewSession(sc, seed)
	fmt.Println("running a 10 ms sleep loop; checkpointing every 5 s ...")
	s.PeriodicCheckpoints(5*sim.Second, 3)
	s.RunFor(30 * sim.Second)
	fmt.Printf("iterations: %d  mean: %.3f ms  worst: %.3f ms\n",
		loop.Times.Len(),
		loop.Times.Mean()/float64(sim.Millisecond),
		loop.Times.Max()/float64(sim.Millisecond))
	for i, r := range s.Exp.Coord.History {
		fmt.Printf("checkpoint %d: downtime %v concealed; suspend skew %v; %d bytes\n",
			i+1, r.MaxDowntime(), r.SuspendSkew, r.TotalBytes)
	}
}

func swapDemo(seed int64) {
	s := emucheck.NewSession(scenario(), seed)
	s.RunFor(2 * sim.Second)
	v0 := s.VirtualNow("client")
	fmt.Printf("virtual time before swap-out: %v\n", v0)
	out, err := s.SwapOut()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("swapped out in %v (pre-copied %d MB, memory %d MB)\n",
		out[0].Duration(), out[0].PreCopyBytes>>20, out[0].MemoryBytes>>20)
	s.RunFor(sim.Hour) // parked: the hardware serves someone else
	in, err := s.SwapIn(true)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("swapped in (lazy) in %v\n", in[0].Duration())
	s.RunFor(sim.Second)
	fmt.Printf("virtual time after 1 s of post-swap running: %v\n", s.VirtualNow("client"))
	fmt.Println("the hour away never happened, as far as the experiment knows")
}

func timetravelDemo(seed int64) {
	s := emucheck.NewSession(scenario(), seed)
	s.RunFor(2 * sim.Second)
	r1, err := s.Checkpoint()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("checkpoint 1 at virtual %v (%d bytes)\n", s.VirtualNow("client"), r1.TotalBytes)
	s.RunFor(3 * sim.Second)
	if _, err := s.Checkpoint(); err != nil {
		fatal(err)
	}
	fmt.Printf("checkpoint 2 at virtual %v; tree has %d nodes\n", s.VirtualNow("client"), s.Tree.Len())

	replay, err := s.Rollback(1, emucheck.Perturbation{Kind: emucheck.SeedChange, Seed: seed + 1})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("rolled back to node 1; replaying with a perturbed seed ...\n")
	replay.RunFor(3 * sim.Second)
	if _, err := replay.Checkpoint(); err != nil {
		fatal(err)
	}
	fmt.Printf("branch recorded; tree now has %d nodes, %d leaves\n",
		replay.Tree.Len(), len(replay.Tree.Leaves()))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emucp:", err)
	os.Exit(1)
}

func main() {
	seed := flag.Int64("seed", 42, "simulation seed")
	flag.Parse()
	cmd := flag.Arg(0)
	switch cmd {
	case "checkpoint":
		checkpointDemo(*seed)
	case "swap":
		swapDemo(*seed)
	case "timetravel":
		timetravelDemo(*seed)
	case "demo", "":
		checkpointDemo(*seed)
		fmt.Println()
		swapDemo(*seed)
		fmt.Println()
		timetravelDemo(*seed)
	default:
		fmt.Fprintf(os.Stderr, "emucp: unknown command %q (want checkpoint|swap|timetravel|demo)\n", cmd)
		os.Exit(2)
	}
}
