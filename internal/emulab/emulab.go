// Package emulab models the testbed itself (paper §2): experiments
// defined as networks of nodes and links, swap-in that maps the network
// onto physical resources — loading node images, building VLANs, and
// interposing delay nodes on shaped links — plus the control-network
// services experiments rely on (DNS, NTP, NFS, and the event system).
//
// The parts that interact with checkpointing are faithful to §5.2:
// control services are stateless, and timestamps they emit are
// *transduced* between real time and an experiment's virtual time so a
// swapped-out experiment never observes the gap; the event system is
// implemented both in its historical server-side form (which mistimes
// events across checkpoints) and the paper's proposed
// inside-the-closed-world form.
package emulab

import (
	"fmt"

	"emucheck/internal/core"
	"emucheck/internal/dummynet"
	"emucheck/internal/firewall"
	"emucheck/internal/guest"
	"emucheck/internal/node"
	"emucheck/internal/notify"
	"emucheck/internal/ntpsim"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
	"emucheck/internal/storage"
	"emucheck/internal/swap"
	"emucheck/internal/xen"
	"emucheck/internal/xfer"
)

// NodeSpec declares one experiment node.
type NodeSpec struct {
	Name string
	// Swappable nodes get a branching-storage virtual disk so their
	// state can follow them across swap cycles.
	Swappable bool
}

// LinkSpec declares one duplex link. Zero Bandwidth means the raw
// 1 Gbps experiment fabric with no delay node interposed.
type LinkSpec struct {
	A, B      string
	Bandwidth simnet.Bitrate
	Delay     sim.Time
	Loss      float64
}

// Shaped reports whether the link needs a delay node.
func (l LinkSpec) Shaped() bool {
	return l.Bandwidth > 0 || l.Delay > 0 || l.Loss > 0
}

// LANSpec declares a switched LAN segment.
type LANSpec struct {
	Name    string
	Members []string
	// Bandwidth caps each member's access link (0 = NIC rate).
	Bandwidth simnet.Bitrate
}

// Spec is the static portion of an experiment definition.
type Spec struct {
	Name  string
	Nodes []NodeSpec
	Links []LinkSpec
	LANs  []LANSpec
}

// NodesNeeded reports the hardware demand of the spec: one machine per
// node plus one per shaped link for the interposed delay node.
func (sp Spec) NodesNeeded() int {
	shaped := 0
	for _, l := range sp.Links {
		if l.Shaped() {
			shaped++
		}
	}
	return len(sp.Nodes) + shaped
}

// Swappable reports whether every node carries a branching-storage disk,
// i.e. whether the experiment can be statefully swapped without losing
// node-local state.
func (sp Spec) Swappable() bool {
	for _, n := range sp.Nodes {
		if !n.Swappable {
			return false
		}
	}
	return len(sp.Nodes) > 0
}

// Testbed is the shared facility: hardware pool, control network,
// services.
type Testbed struct {
	S      *sim.Simulator
	Bus    *notify.Bus
	NTP    *ntpsim.Sync
	Server *xfer.Server
	Params node.Params

	// FreeNodes is the available hardware pool.
	FreeNodes int
	// PoolSize is the total hardware pool.
	PoolSize int

	experiments map[string]*Experiment
	// definitions retains specs of swapped-out experiments so they can be
	// re-admitted by name (classic Emulab keeps the definition, §2).
	definitions map[string]Spec
}

// NewTestbed creates a testbed with the given hardware pool size.
func NewTestbed(s *sim.Simulator, pool int) *Testbed {
	return &Testbed{
		S:           s,
		Bus:         notify.NewBus(s),
		NTP:         ntpsim.New(s, ntpsim.DefaultModel(), 0x7ab5),
		Server:      xfer.NewServer(s, 0),
		Params:      node.DefaultParams(),
		FreeNodes:   pool,
		PoolSize:    pool,
		experiments: make(map[string]*Experiment),
		definitions: make(map[string]Spec),
	}
}

// InUse reports how many pool machines are currently allocated.
func (tb *Testbed) InUse() int { return tb.PoolSize - tb.FreeNodes }

// Experiment returns a currently swapped-in experiment by name.
func (tb *Testbed) Experiment(name string) *Experiment { return tb.experiments[name] }

// ExpNode is one instantiated experiment node.
type ExpNode struct {
	Spec NodeSpec
	M    *node.Machine
	K    *guest.Kernel
	HV   *xen.Hypervisor
	Vol  *storage.Volume // nil unless swappable
}

// Experiment is a swapped-in experiment.
type Experiment struct {
	Spec       Spec
	TB         *Testbed
	Nodes      map[string]*ExpNode
	DelayNodes []*dummynet.DelayNode
	Coord      *core.Coordinator
	Swap       *swap.Manager
	Events     *EventSystem
	Services   *ControlServices

	allocated int  // machines charged against the pool (incl. delay nodes)
	released  bool // hardware returned to the pool while swapped out
}

// Allocated reports the experiment's hardware demand.
func (e *Experiment) Allocated() int { return e.allocated }

// Released reports whether the experiment's hardware is currently
// returned to the pool (parked, statefully swapped out).
func (e *Experiment) Released() bool { return e.released }

// SwapIn instantiates an experiment: allocate machines (one per node
// plus one per shaped link for the delay node), load images, build the
// network, start NTP, and boot.
func (tb *Testbed) SwapIn(spec Spec) (*Experiment, error) {
	if _, dup := tb.experiments[spec.Name]; dup {
		return nil, fmt.Errorf("emulab: experiment %q already swapped in", spec.Name)
	}
	needed := spec.NodesNeeded()
	if needed > tb.FreeNodes {
		return nil, fmt.Errorf("emulab: need %d nodes, %d free", needed, tb.FreeNodes)
	}
	tb.FreeNodes -= needed

	e := &Experiment{Spec: spec, TB: tb, Nodes: make(map[string]*ExpNode), allocated: needed}
	var members []*core.Member
	var swapNodes []*swap.Node
	for _, ns := range spec.Nodes {
		m := node.NewMachine(tb.S, ns.Name, tb.Params)
		k := guest.New(m, tb.Params, guest.DefaultConfig())
		var vol *storage.Volume
		if ns.Swappable {
			vol = storage.NewVolume(m.Disk, tb.Params.GuestDiskBytes, storage.Optimized)
			k.Backend = vol
		}
		hv := xen.New(m, tb.Params, k)
		en := &ExpNode{Spec: ns, M: m, K: k, HV: hv, Vol: vol}
		e.Nodes[ns.Name] = en
		tb.NTP.Start(ns.Name)
		members = append(members, &core.Member{Name: ns.Name, HV: hv})
		if ns.Swappable {
			swapNodes = append(swapNodes, &swap.Node{Name: ns.Name, HV: hv, Vol: vol, GoldenCached: true})
		}
	}

	// Build links. A node may sit on several links (and a LAN); the
	// physical machine has one experiment NIC per link, which the model
	// folds into a per-node output router that picks the egress segment
	// by destination (single L2 hop — Emulab links are switched
	// Ethernet; multi-hop forwarding is the guest's business).
	routes := make(map[string]map[simnet.Addr]simnet.Port)
	addRoute := func(from *ExpNode, to simnet.Addr, p simnet.Port) {
		if routes[from.Spec.Name] == nil {
			routes[from.Spec.Name] = make(map[simnet.Addr]simnet.Port)
		}
		routes[from.Spec.Name][to] = p
	}
	for i, l := range spec.Links {
		a, okA := e.Nodes[l.A]
		b, okB := e.Nodes[l.B]
		if !okA || !okB {
			return nil, fmt.Errorf("emulab: link %s-%s references unknown node", l.A, l.B)
		}
		if !l.Shaped() {
			addRoute(a, b.M.ExpNIC.Addr(), simnet.NewWire(tb.S, 2*sim.Microsecond, b.M.ExpNIC))
			addRoute(b, a.M.ExpNIC.Addr(), simnet.NewWire(tb.S, 2*sim.Microsecond, a.M.ExpNIC))
			continue
		}
		dn := dummynet.NewDelayNode(tb.S, fmt.Sprintf("%s-delay%d", spec.Name, i), l.Bandwidth, l.Delay)
		dn.SetLoss(l.Loss)
		// Endpoint-to-delay-node wires are the "zero-delay links" of
		// §4.4: only physically-in-flight packets escape the capture.
		addRoute(a, b.M.ExpNIC.Addr(), simnet.NewWire(tb.S, 2*sim.Microsecond, dn.Forward))
		addRoute(b, a.M.ExpNIC.Addr(), simnet.NewWire(tb.S, 2*sim.Microsecond, dn.Reverse))
		dn.AttachForward(b.M.ExpNIC)
		dn.AttachReverse(a.M.ExpNIC)
		e.DelayNodes = append(e.DelayNodes, dn)
		tb.NTP.Start(dn.Name)
	}

	// Build LANs.
	for _, lan := range spec.LANs {
		sw := simnet.NewSwitch(tb.S, 2*sim.Microsecond)
		for _, name := range lan.Members {
			n, ok := e.Nodes[name]
			if !ok {
				return nil, fmt.Errorf("emulab: LAN %s references unknown node %s", lan.Name, name)
			}
			sw.Connect(n.M.ExpNIC.Addr(), n.M.ExpNIC)
			for _, peer := range lan.Members {
				if peer != name {
					addRoute(n, simnet.Addr(peer), sw)
				}
			}
		}
	}

	// Attach each node's egress router.
	for name, n := range e.Nodes {
		table := routes[name]
		switch len(table) {
		case 0:
			// Isolated node: leave unattached.
		case 1:
			for _, p := range table {
				n.M.ExpNIC.Attach(p)
			}
		default:
			t := table
			n.M.ExpNIC.Attach(simnet.PortFunc(func(pkt *simnet.Packet) {
				if out, ok := t[pkt.Dst]; ok {
					out.Accept(pkt)
				}
			}))
		}
	}

	// Several experiments share one control LAN; scope the checkpoint
	// protocol so coordinators never act on each other's notifications —
	// and so the bus fans each publish out to this experiment's daemons
	// only, not every daemon on the testbed.
	e.Coord = core.NewScopedCoordinator(tb.S, tb.Bus, tb.NTP, spec.Name, members, e.DelayNodes)
	if len(swapNodes) > 0 {
		e.Swap = swap.NewManager(tb.S, tb.Server, e.Coord, swapNodes)
		e.Swap.Tag = spec.Name
	}
	e.Services = &ControlServices{tb: tb}
	e.Events = NewEventSystem(e, InExperiment)
	tb.experiments[spec.Name] = e
	delete(tb.definitions, spec.Name)
	return e, nil
}

// SwapOutStateless is the classic Emulab swap-out: hardware released,
// run-time state lost (§2). The experiment definition remains and can be
// swapped in again (from its initial state) via SwapInByName.
func (tb *Testbed) SwapOutStateless(e *Experiment) {
	e.Halt()
	// The discarded instance's control daemons stop listening; a
	// re-admission under the same name gets fresh ones.
	e.Coord.Shutdown()
	if !e.released {
		tb.FreeNodes += e.allocated
		e.released = true
	}
	delete(tb.experiments, e.Spec.Name)
	tb.definitions[e.Spec.Name] = e.Spec
}

// Definition returns the retained spec of a swapped-out experiment.
func (tb *Testbed) Definition(name string) (Spec, bool) {
	sp, ok := tb.definitions[name]
	return sp, ok
}

// SwapInByName re-instantiates a retained definition from its initial
// state — the re-admission half of classic stateless swapping.
func (tb *Testbed) SwapInByName(name string) (*Experiment, error) {
	sp, ok := tb.definitions[name]
	if !ok {
		return nil, fmt.Errorf("emulab: no retained definition %q", name)
	}
	return tb.SwapIn(sp)
}

// ReleaseHardware returns a statefully swapped-out experiment's machines
// to the pool without discarding the experiment: its state lives on the
// file server and it can be re-admitted with AcquireHardware + stateful
// swap-in. This is what lets a preemptive scheduler time-share the pool.
func (tb *Testbed) ReleaseHardware(e *Experiment) {
	if e.released {
		return
	}
	tb.FreeNodes += e.allocated
	e.released = true
}

// AcquireHardware re-allocates machines for a parked experiment ahead of
// its stateful swap-in.
func (tb *Testbed) AcquireHardware(e *Experiment) error {
	if !e.released {
		return nil
	}
	if e.allocated > tb.FreeNodes {
		return fmt.Errorf("emulab: need %d nodes, %d free", e.allocated, tb.FreeNodes)
	}
	tb.FreeNodes -= e.allocated
	e.released = false
	return nil
}

// Node returns a node by name.
func (e *Experiment) Node(name string) *ExpNode { return e.Nodes[name] }

// Halt freezes every guest and delay node with no intent to resume —
// the fate of run-time state under classic stateless swap-out (§2). The
// temporal firewalls engage and are never disengaged, so the discarded
// instance schedules no further work.
func (e *Experiment) Halt() {
	for _, ns := range e.Spec.Nodes {
		n := e.Nodes[ns.Name]
		if !n.K.Suspended() {
			// The drain completes in the background; nobody waits for a
			// discarded instance.
			_ = n.K.Suspend(func() {})
		}
	}
	for _, dn := range e.DelayNodes {
		dn.Freeze()
	}
}

// ControlServices models the Emulab server services an experiment may
// touch: DNS, NTP, and NFS. DNS and NTP are stateless by design; NFS v2
// is stateless but carries timestamps, which must be transduced between
// real and virtual time (§5.2) so a swapped experiment sees no gap.
type ControlServices struct {
	tb *Testbed

	// NFSTransduce disables/enables timestamp transduction, so tests
	// can demonstrate the anomaly it prevents.
	NFSTransduceOff bool

	Lookups uint64
}

// DNSLookup resolves an experiment-internal name (stateless; trivially
// checkpoint-safe).
func (cs *ControlServices) DNSLookup(name string) (simnet.Addr, error) {
	cs.Lookups++
	return simnet.Addr(name), nil
}

// NFSGetAttr reports a file's modification timestamp as observed by the
// asking guest. The server stamps in real wall time; the transducer
// rewrites inbound timestamps into the guest's virtual time (and
// outbound ones back), filtering NFS commands that carry timestamps.
func (cs *ControlServices) NFSGetAttr(k *guest.Kernel, mtimeReal sim.Time) sim.Time {
	if cs.NFSTransduceOff {
		return mtimeReal
	}
	// Transduction: shift by the gap between real and virtual time that
	// checkpoints have introduced for this guest.
	gap := cs.tb.S.Now() - k.Clock.SystemTime()
	v := mtimeReal - gap
	if v < 0 {
		v = 0
	}
	return v
}

// EventMode selects where the per-experiment event scheduler runs.
type EventMode int

// Event scheduler placements.
const (
	// ServerSide is the historical placement: the scheduler runs on an
	// Emulab server and dispatches in real time — it keeps ticking
	// while the experiment is frozen, mistiming events (§5.2).
	ServerSide EventMode = iota
	// InExperiment moves the scheduler into the closed world: events
	// arm guest timers inside the temporal firewall and are therefore
	// checkpoint-transparent (§5.2's proposed fix).
	InExperiment
)

// EventSystem is the distributed experiment-control event scheduler.
type EventSystem struct {
	e    *Experiment
	Mode EventMode

	Dispatched int
	// Mistimed counts events that fired at the wrong virtual time by
	// more than one jiffy — only possible in ServerSide mode.
	Mistimed int
}

// NewEventSystem creates the scheduler in the given placement.
func NewEventSystem(e *Experiment, mode EventMode) *EventSystem {
	return &EventSystem{e: e, Mode: mode}
}

// Schedule arranges for fn to run on the named node when that node's
// *virtual* clock reaches at.
func (ev *EventSystem) Schedule(nodeName string, at sim.Time, fn func()) error {
	n, ok := ev.e.Nodes[nodeName]
	if !ok {
		return fmt.Errorf("emulab: no node %q", nodeName)
	}
	check := func() {
		ev.Dispatched++
		got := n.K.Monotonic()
		diff := got - at
		if diff < 0 {
			diff = -diff
		}
		if diff > n.K.Jiffy() {
			ev.Mistimed++
		}
		fn()
	}
	switch ev.Mode {
	case InExperiment:
		// An agent inside the guest arms a firewall timer: checkpoints
		// freeze it along with everything else.
		d := at - n.K.Monotonic()
		n.K.FW.After(firewall.TimerJob, d, "event."+nodeName, check)
	default:
		// The server dispatches in real time, assuming virtual==real.
		d := at - n.K.Monotonic() // correct only if no checkpoint intervenes
		ev.e.TB.S.DoAfter(d, "event.server."+nodeName, func() {
			if n.K.Suspended() {
				// Dispatch to a frozen node: the agent connection stalls;
				// deliver (mistimed) when the node resumes. Modeled as
				// immediate mistimed delivery on resume via a short poll.
				ev.deliverWhenLive(n, check)
				return
			}
			check()
		})
	}
	return nil
}

func (ev *EventSystem) deliverWhenLive(n *ExpNode, fn func()) {
	if !n.K.Suspended() {
		fn()
		return
	}
	ev.e.TB.S.DoAfter(100*sim.Millisecond, "event.retry", func() { ev.deliverWhenLive(n, fn) })
}
