package emucheck

import (
	"encoding/json"
	"testing"

	"emucheck/internal/fault"
	"emucheck/internal/sched"
	"emucheck/internal/sim"
)

// TestCrashRecoverFromCommittedEpoch: a running tenant with the
// committed-epoch pipeline crashes mid-run; Recover re-admits it, the
// guests resume, lost work is bounded by the epoch period, and the
// genealogy notes the recovery.
func TestCrashRecoverFromCommittedEpoch(t *testing.T) {
	c := NewCluster(2, 11, FIFO)
	c.Incremental = true
	c.SaveDeadline = 20 * sim.Second
	ticks := 0
	sess, err := c.Submit(tenantScenario("e1", &ticks), 0)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(12 * sim.Second) // admitted and running
	if err := sess.StartEpochs(15 * sim.Second); err != nil {
		t.Fatal(err)
	}
	c.RunFor(100 * sim.Second)
	if sess.EpochsAborted() != 0 {
		t.Fatalf("clean run aborted %d epochs", sess.EpochsAborted())
	}
	commit := sess.Exp.Swap.LastCommitAt()
	if commit == 0 {
		t.Fatal("epoch pipeline never committed")
	}

	if err := c.Crash("e1"); err != nil {
		t.Fatal(err)
	}
	if got := sess.State(); got != "crashed" {
		t.Fatalf("state %q after crash, want crashed", got)
	}
	if c.Sched.Free() != 2 || c.TB.FreeNodes != 2 {
		t.Fatalf("crash leaked hardware: sched free %d, testbed free %d", c.Sched.Free(), c.TB.FreeNodes)
	}
	preCrash := ticks
	c.RunFor(30 * sim.Second)
	if ticks != preCrash {
		t.Fatalf("crashed tenant kept ticking: %d -> %d", preCrash, ticks)
	}

	if err := c.Recover("e1"); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * sim.Minute)
	if got := sess.State(); got != "running" {
		t.Fatalf("state %q after recovery, want running", got)
	}
	if sess.Recoveries() != 1 {
		t.Fatalf("recoveries %d, want 1", sess.Recoveries())
	}
	if ticks <= preCrash {
		t.Fatalf("recovered tenant never resumed work: %d ticks", ticks)
	}
	// Lost work is the crash-to-last-commit gap, bounded by the period
	// plus the commit upload.
	if lost := sess.LostWork(); lost <= 0 || lost > 25*sim.Second {
		t.Fatalf("lost work %v, want (0, 25s]", lost)
	}
	if sess.CrashedAt() == 0 || sess.RecoveredAt() <= sess.CrashedAt() {
		t.Fatalf("recovery bookkeeping: crashed %v, recovered %v", sess.CrashedAt(), sess.RecoveredAt())
	}
	_ = commit
}

// TestCrashDuringParkReleasesHardware: a tenant crashed in the middle
// of a HoldResume swap-out (state Parking) must leave the pool whole —
// the scheduler's ledger, the testbed's free count, and parksInFlight
// all settle, and the queue keeps moving.
func TestCrashDuringParkReleasesHardware(t *testing.T) {
	c := NewCluster(2, 12, FIFO)
	c.Incremental = true
	c.SaveDeadline = 20 * sim.Second
	ticks := 0
	sess, err := c.Submit(tenantScenario("e1", &ticks), 0)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * sim.Second)
	if err := c.Park("e1"); err != nil {
		t.Fatal(err)
	}
	// Let the park reach its freeze (pre-copy is quick for an idle
	// tenant, the frozen memory stream is not), then kill the nodes.
	c.RunFor(3 * sim.Second)
	if got := sess.job.State(); got != sched.Parking {
		t.Fatalf("tenant is %v, want parking mid-swap-out", got)
	}
	if err := c.Crash("e1"); err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * sim.Second)
	if got := sess.State(); got != "crashed" {
		t.Fatalf("state %q, want crashed", got)
	}
	if c.Sched.Free() != 2 {
		t.Fatalf("scheduler leaked hardware: free %d, want 2", c.Sched.Free())
	}
	if c.TB.FreeNodes != 2 {
		t.Fatalf("testbed leaked hardware: free %d, want 2", c.TB.FreeNodes)
	}
	// The freed pool must still admit new work.
	other := 0
	if _, err := c.Submit(tenantScenario("e2", &other), 0); err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * sim.Second)
	if got := c.Tenant("e2").State(); got != "running" {
		t.Fatalf("successor tenant is %q, want running", got)
	}
	if other == 0 {
		t.Fatalf("successor tenant never ticked")
	}
}

// TestCrashParkedTenantSurvivable: crashing a parked (swapped-out)
// tenant endangers nothing — its state is on the file server — and
// Recover restores it.
func TestCrashParkedTenantSurvivable(t *testing.T) {
	c := NewCluster(2, 13, FIFO)
	c.Incremental = true
	c.SaveDeadline = 20 * sim.Second
	ticks := 0
	sess, err := c.Submit(tenantScenario("e1", &ticks), 0)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * sim.Second)
	if err := c.Park("e1"); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * sim.Minute)
	if got := sess.State(); got != "parked" {
		t.Fatalf("state %q, want parked", got)
	}
	preCrash := ticks
	if err := c.Crash("e1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Recover("e1"); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * sim.Minute)
	if got := sess.State(); got != "running" {
		t.Fatalf("state %q after recovery, want running", got)
	}
	if ticks <= preCrash {
		t.Fatalf("tenant never resumed work after parked-crash recovery")
	}
	// The park's swap-out is the committed restore point; the tenant
	// was idle off-hardware afterwards, so recovery lost nothing —
	// parked wall-clock time is not lost work.
	if sess.Recoveries() != 1 {
		t.Fatalf("recoveries %d, want 1", sess.Recoveries())
	}
	if lost := sess.LostWork(); lost != 0 {
		t.Fatalf("parked-crash recovery reported %v lost work, want 0", lost)
	}
}

// TestRecoverWithoutEpochFails: a crashed tenant with no committed
// epoch cannot Recover (only Restart), and says so.
func TestRecoverWithoutEpochFails(t *testing.T) {
	c := NewCluster(2, 14, FIFO)
	c.Incremental = true
	ticks := 0
	if _, err := c.Submit(tenantScenario("e1", &ticks), 0); err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * sim.Second)
	if err := c.Crash("e1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Recover("e1"); err == nil {
		t.Fatal("Recover succeeded with no committed epoch")
	}
	if err := c.Restart("e1"); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * sim.Minute)
	if got := c.Tenant("e1").State(); got != "running" {
		t.Fatalf("state %q after restart, want running", got)
	}
}

// TestFaultPlanDeterministic: two same-seed runs with an identical
// injection plan (a dropped notification and a crash+recovery) are
// byte-identical.
func TestFaultPlanDeterministic(t *testing.T) {
	run := func() string {
		c := NewCluster(2, 99, FIFO)
		c.Incremental = true
		c.SaveDeadline = 15 * sim.Second
		ticks := 0
		sess, err := c.Submit(tenantScenario("e1", &ticks), 0)
		if err != nil {
			t.Fatal(err)
		}
		c.S.At(12*sim.Second, "test.epochs", func() {
			if err := sess.StartEpochs(10 * sim.Second); err != nil {
				t.Error(err)
			}
		})
		plan := &fault.Plan{Seed: 5, Injections: []fault.Injection{
			{Kind: fault.Drop, At: 20 * sim.Second, Target: "e1", Count: 1},
			{Kind: fault.Crash, At: 90 * sim.Second, Target: "e1"},
		}}
		c.InjectFaults(plan)
		c.S.At(100*sim.Second, "test.recover", func() {
			if err := c.Recover("e1"); err != nil {
				t.Error(err)
			}
		})
		c.RunFor(5 * sim.Minute)
		digest := clusterDigest(c, []int{ticks})
		stats, _ := json.Marshal(map[string]any{
			"aborted": sess.EpochsAborted(), "recov": sess.Recoveries(),
			"lost": sess.LostWork(), "dropped": c.TB.Bus.Dropped,
			"topics": c.TB.Bus.Topics(), "plan": plan.Dropped + plan.Crashes,
		})
		return digest + string(stats)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("faulty runs diverged:\n%s\n%s", a, b)
	}
}

// TestRecoveredParkedTenantCanParkAgain: recovery of a crashed-while-
// parked tenant must clear the held swap-out epoch, so the recovered
// incarnation can checkpoint and park again (regression: the held
// epoch wedged the coordinator forever).
func TestRecoveredParkedTenantCanParkAgain(t *testing.T) {
	c := NewCluster(2, 21, FIFO)
	c.Incremental = true
	c.SaveDeadline = 20 * sim.Second
	ticks := 0
	sess, err := c.Submit(tenantScenario("e1", &ticks), 0)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * sim.Second)
	if err := c.Park("e1"); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * sim.Minute)
	if err := c.Crash("e1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Recover("e1"); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * sim.Minute)
	if got := sess.State(); got != "running" {
		t.Fatalf("state %q after recovery, want running", got)
	}
	if sess.Exp.Coord.Busy() || sess.Exp.Coord.Held() {
		t.Fatalf("coordinator wedged after recovery: busy=%v held=%v",
			sess.Exp.Coord.Busy(), sess.Exp.Coord.Held())
	}
	// A fresh checkpoint and a fresh park must both work.
	if _, err := sess.CheckpointOpts(CheckpointOptions{Incremental: true}); err != nil {
		t.Fatalf("checkpoint on recovered tenant: %v", err)
	}
	if err := c.Park("e1"); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * sim.Minute)
	if got := sess.State(); got != "parked" {
		t.Fatalf("state %q after re-park, want parked (LastErr %v)", got, sess.LastErr)
	}
}

// TestEpochPipelineRestartsAfterRecovery: the committed-epoch pipeline
// the crash stopped must resume on the recovered incarnation, so the
// restore point keeps refreshing and a second crash stays cheap
// (regression: LastCommitAt froze at its pre-crash value).
func TestEpochPipelineRestartsAfterRecovery(t *testing.T) {
	c := NewCluster(2, 22, FIFO)
	c.Incremental = true
	c.SaveDeadline = 20 * sim.Second
	ticks := 0
	sess, err := c.Submit(tenantScenario("e1", &ticks), 0)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(12 * sim.Second)
	if err := sess.StartEpochs(15 * sim.Second); err != nil {
		t.Fatal(err)
	}
	c.RunFor(60 * sim.Second)
	if err := c.Crash("e1"); err != nil {
		t.Fatal(err)
	}
	preCrashCommit := sess.Exp.Swap.LastCommitAt()
	if err := c.Recover("e1"); err != nil {
		t.Fatal(err)
	}
	c.RunFor(3 * sim.Minute)
	if got := sess.State(); got != "running" {
		t.Fatalf("state %q, want running", got)
	}
	if after := sess.Exp.Swap.LastCommitAt(); after <= preCrashCommit {
		t.Fatalf("restore point frozen after recovery: %v (pre-crash %v)", after, preCrashCommit)
	}
	// And a second crash recovers with bounded lost work again.
	if err := c.Crash("e1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Recover("e1"); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * sim.Minute)
	if sess.Recoveries() != 2 || sess.State() != "running" {
		t.Fatalf("second recovery: recoveries=%d state=%s", sess.Recoveries(), sess.State())
	}
}
