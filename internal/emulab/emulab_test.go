package emulab

import (
	"testing"

	"emucheck/internal/core"
	"emucheck/internal/guest"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

func twoNodeSpec(shaped bool) Spec {
	l := LinkSpec{A: "a", B: "b"}
	if shaped {
		l.Bandwidth = 100 * simnet.Mbps
		l.Delay = 5 * sim.Millisecond
	}
	return Spec{
		Name:  "exp1",
		Nodes: []NodeSpec{{Name: "a", Swappable: true}, {Name: "b", Swappable: true}},
		Links: []LinkSpec{l},
	}
}

func TestSwapInAllocatesAndWires(t *testing.T) {
	s := sim.New(1)
	tb := NewTestbed(s, 10)
	e, err := tb.SwapIn(twoNodeSpec(true))
	if err != nil {
		t.Fatal(err)
	}
	// 2 nodes + 1 delay node.
	if tb.FreeNodes != 7 {
		t.Fatalf("free = %d", tb.FreeNodes)
	}
	if len(e.DelayNodes) != 1 {
		t.Fatal("no delay node interposed")
	}
	// Traffic crosses the shaped link with the configured delay.
	var got sim.Time
	e.Node("b").K.Handle("x", func(simnet.Addr, *guest.Message) { got = s.Now() })
	e.Node("a").K.Send("b", 1500, &guest.Message{Port: "x"})
	s.RunFor(sim.Second)
	if got < 5*sim.Millisecond {
		t.Fatalf("delivery at %v beat the 5ms link", got)
	}
}

func TestUnshapedLinkHasNoDelayNode(t *testing.T) {
	s := sim.New(1)
	tb := NewTestbed(s, 10)
	e, err := tb.SwapIn(twoNodeSpec(false))
	if err != nil {
		t.Fatal(err)
	}
	if len(e.DelayNodes) != 0 {
		t.Fatal("delay node on unshaped link")
	}
	if tb.FreeNodes != 8 {
		t.Fatalf("free = %d", tb.FreeNodes)
	}
}

func TestPoolExhaustion(t *testing.T) {
	s := sim.New(1)
	tb := NewTestbed(s, 2)
	if _, err := tb.SwapIn(twoNodeSpec(true)); err == nil {
		t.Fatal("overallocation succeeded")
	}
}

func TestDuplicateExperiment(t *testing.T) {
	s := sim.New(1)
	tb := NewTestbed(s, 10)
	tb.SwapIn(twoNodeSpec(false))
	if _, err := tb.SwapIn(twoNodeSpec(false)); err == nil {
		t.Fatal("duplicate swap-in succeeded")
	}
}

func TestStatelessSwapOutReleases(t *testing.T) {
	s := sim.New(1)
	tb := NewTestbed(s, 10)
	e, _ := tb.SwapIn(twoNodeSpec(true))
	tb.SwapOutStateless(e)
	if tb.FreeNodes != 10 {
		t.Fatalf("free = %d", tb.FreeNodes)
	}
	if _, err := tb.SwapIn(twoNodeSpec(true)); err != nil {
		t.Fatalf("re-swap-in failed: %v", err)
	}
}

func TestLANConnectivity(t *testing.T) {
	s := sim.New(1)
	tb := NewTestbed(s, 10)
	e, err := tb.SwapIn(Spec{
		Name:  "lan",
		Nodes: []NodeSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}},
		LANs:  []LANSpec{{Name: "lan0", Members: []string{"a", "b", "c"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, n := range []string{"b", "c"} {
		n := n
		e.Node(n).K.Handle("m", func(simnet.Addr, *guest.Message) { got[n]++ })
	}
	e.Node("a").K.Send("b", 500, &guest.Message{Port: "m"})
	e.Node("a").K.Send("c", 500, &guest.Message{Port: "m"})
	s.RunFor(sim.Second)
	if got["b"] != 1 || got["c"] != 1 {
		t.Fatalf("LAN delivery: %v", got)
	}
}

func TestBadSpecs(t *testing.T) {
	s := sim.New(1)
	tb := NewTestbed(s, 10)
	if _, err := tb.SwapIn(Spec{Name: "x", Nodes: []NodeSpec{{Name: "a"}},
		Links: []LinkSpec{{A: "a", B: "ghost"}}}); err == nil {
		t.Fatal("ghost link accepted")
	}
	if _, err := tb.SwapIn(Spec{Name: "y", Nodes: []NodeSpec{{Name: "a"}},
		LANs: []LANSpec{{Name: "l", Members: []string{"ghost"}}}}); err == nil {
		t.Fatal("ghost LAN member accepted")
	}
}

func TestNFSTimestampTransduction(t *testing.T) {
	s := sim.New(1)
	tb := NewTestbed(s, 10)
	e, _ := tb.SwapIn(twoNodeSpec(false))
	k := e.Node("a").K
	s.RunFor(10 * sim.Second)
	// A checkpoint freezes the guest for 30 s of real time.
	k.Suspend(func() {})
	s.RunFor(30 * sim.Second)
	k.Resume(nil)
	s.RunFor(sim.Second)
	// The server writes a file "now" (real time ~41 s); the guest's
	// clock reads ~11 s. Without transduction the file appears 30 s in
	// the guest's future.
	mtimeReal := s.Now()
	seen := e.Services.NFSGetAttr(k, mtimeReal)
	if seen > k.Monotonic()+sim.Second {
		t.Fatalf("transduced mtime %v in the guest future (guest now %v)", seen, k.Monotonic())
	}
	e.Services.NFSTransduceOff = true
	raw := e.Services.NFSGetAttr(k, mtimeReal)
	if raw <= k.Monotonic() {
		t.Fatal("expected the anomaly without transduction")
	}
}

func TestEventSystemInExperimentSurvivesCheckpoints(t *testing.T) {
	s := sim.New(1)
	tb := NewTestbed(s, 10)
	e, _ := tb.SwapIn(twoNodeSpec(false))
	fired := 0
	e.Events.Schedule("a", 5*sim.Second, func() { fired++ })
	// Freeze from 2 s to 32 s of real time.
	s.RunFor(2 * sim.Second)
	e.Node("a").K.Suspend(func() {})
	s.RunFor(30 * sim.Second)
	e.Node("a").K.Resume(nil)
	s.RunFor(10 * sim.Second)
	if fired != 1 {
		t.Fatal("event lost")
	}
	if e.Events.Mistimed != 0 {
		t.Fatalf("in-experiment event mistimed %d", e.Events.Mistimed)
	}
}

func TestEventSystemServerSideMistimesAcrossCheckpoint(t *testing.T) {
	s := sim.New(1)
	tb := NewTestbed(s, 10)
	e, _ := tb.SwapIn(twoNodeSpec(false))
	e.Events = NewEventSystem(e, ServerSide)
	fired := 0
	e.Events.Schedule("a", 5*sim.Second, func() { fired++ })
	s.RunFor(2 * sim.Second)
	e.Node("a").K.Suspend(func() {})
	s.RunFor(30 * sim.Second)
	e.Node("a").K.Resume(nil)
	s.RunFor(10 * sim.Second)
	if fired != 1 {
		t.Fatal("event lost entirely")
	}
	if e.Events.Mistimed != 1 {
		t.Fatalf("server-side scheduler should mistime across checkpoints (got %d)", e.Events.Mistimed)
	}
}

func TestDistributedCheckpointViaExperiment(t *testing.T) {
	s := sim.New(1)
	tb := NewTestbed(s, 10)
	e, _ := tb.SwapIn(twoNodeSpec(true))
	s.RunFor(sim.Second)
	var res *core.Result
	if err := e.Coord.Checkpoint(core.Options{}, func(r *core.Result, _ error) { res = r }); err != nil {
		t.Fatal(err)
	}
	s.RunFor(sim.Minute)
	if res == nil {
		t.Fatal("no checkpoint through the experiment facade")
	}
	if len(res.Images) != 2 || len(res.DelayStates) != 1 {
		t.Fatalf("images=%d delays=%d", len(res.Images), len(res.DelayStates))
	}
}

func TestDNSStateless(t *testing.T) {
	s := sim.New(1)
	tb := NewTestbed(s, 10)
	e, _ := tb.SwapIn(twoNodeSpec(false))
	addr, err := e.Services.DNSLookup("b")
	if err != nil || addr != "b" {
		t.Fatalf("lookup: %v %v", addr, err)
	}
}
