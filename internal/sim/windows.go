package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Windows drives a set of independent Simulators ("worlds") through
// conservative lookahead windows — the classic conservative parallel
// discrete-event scheme, specialized to federated facilities whose
// only coupling is WAN traffic with a declared minimum latency.
//
// The safety argument: a message sent by world A during the window
// [T, T+L) cannot arrive at world B before T+L, because every
// cross-world path carries at least L of latency (the Lookahead).
// Each world can therefore advance to the window barrier T+L without
// ever seeing an event from a peer's present, and the worlds may run
// on separate goroutines with no locking at all — they share nothing
// until the barrier.
//
// At the barrier the coordinator runs the single-threaded Exchange
// hook. That is where cross-world messages collected during the
// window are sorted into their canonical (when, world, seq) order and
// injected into their destination worlds; every injected event lands
// at or after T+L, which is exactly every world's clock, so causality
// (At's scheduled-in-the-past panic) is preserved by construction.
//
// Because the windows partition sim-time identically at every worker
// count and the barrier is single-threaded, a run at Workers=8 is
// bit-identical to the serial reference at Workers=1 — same events,
// same order, same ledgers. That is the property the federation
// digest tests pin.
type Windows struct {
	// Worlds are the federated simulators. They must not share any
	// mutable state touched during a window.
	Worlds []*Simulator

	// Lookahead is the window length L: the minimum latency of any
	// cross-world interaction. Run panics if it is not positive.
	Lookahead Time

	// Workers is the goroutine-pool width for advancing worlds inside
	// a window: 1 is the serial reference, 0 means GOMAXPROCS. The
	// width never affects results, only wall-clock.
	Workers int

	// Exchange, if set, runs single-threaded at every barrier with all
	// worlds stopped exactly at end. It injects cross-world messages
	// (arrivals >= end) and may perform global decisions (migration,
	// admission) that must see a consistent federation-wide snapshot.
	Exchange func(end Time)

	// Barriers counts completed windows, for diagnostics.
	Barriers int64
}

// Run advances every world to until, window by window. Each window
// runs the worlds to the common barrier time (concurrently when
// Workers > 1), then fires Exchange. Worlds are expected to start at
// a common clock; the first window begins at the maximum of their
// current times so a straggler can never be run backwards.
func (w *Windows) Run(until Time) {
	if w.Lookahead <= 0 {
		panic(fmt.Sprintf("sim: windows lookahead %v must be positive", w.Lookahead))
	}
	if len(w.Worlds) == 0 {
		return
	}
	t := w.Worlds[0].Now()
	for _, s := range w.Worlds[1:] {
		if s.Now() > t {
			t = s.Now()
		}
	}
	for t < until {
		end := t + w.Lookahead
		if end > until || end < t { // clamp, and guard Never overflow
			end = until
		}
		w.runWindow(end)
		w.Barriers++
		if w.Exchange != nil {
			w.Exchange(end)
		}
		t = end
	}
}

// runWindow advances every world to end. The serial path preserves
// world order; the parallel path hands world indices to a goroutine
// pool through an atomic cursor. Both paths are equivalent because
// the worlds are disjoint — there is no cross-world event delivery
// inside a window, by the lookahead contract.
func (w *Windows) runWindow(end Time) {
	workers := w.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(w.Worlds) {
		workers = len(w.Worlds)
	}
	if workers <= 1 {
		for _, s := range w.Worlds {
			s.RunUntil(end)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(w.Worlds) {
					return
				}
				w.Worlds[i].RunUntil(end)
			}
		}()
	}
	wg.Wait()
}
