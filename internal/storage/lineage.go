package storage

import "fmt"

// Epoch is one committed incremental checkpoint: the set of blocks
// dirtied since the parent epoch (content-tagged so reconstruction can
// be verified byte-identical) plus the dirty memory pages saved with it.
type Epoch struct {
	// ID orders epochs within a lineage; the parent is the previous
	// epoch in the chain (or the merged base).
	ID int
	// Blocks maps dirtied virtual block addresses to their content tag.
	Blocks map[int64]int64
	// MemPages is the count of dirty memory pages captured in this epoch.
	MemPages int
}

// DiskBytes reports the epoch's disk-delta size.
func (e *Epoch) DiskBytes() int64 { return int64(len(e.Blocks)) * BlockSize }

// Lineage is the server-side checkpoint chain of one swappable node: a
// merged base plus an ordered chain of incremental epochs. A swap-out
// commits the epoch's dirty delta; a swap-in reconstructs the node's
// state by replaying base + chain in order (later epochs win). Chains
// deeper than MaxDepth are merged from the oldest end into the base —
// an offline server-side step, like the paper's §5.3 delta merge — so
// replay cost stays bounded no matter how many swap cycles accumulate.
type Lineage struct {
	// MaxDepth bounds the replay chain length; Commit folds the oldest
	// epochs into the base past it. Zero means DefaultMaxDepth.
	MaxDepth int

	base   *Epoch
	chain  []*Epoch
	nextID int

	// MergedBytes accumulates disk bytes folded into the base by
	// pruning, the offline server-side work the merge rate pays for.
	MergedBytes int64
}

// DefaultMaxDepth is the chain bound used when MaxDepth is zero: deep
// enough to keep per-cycle commits cheap, shallow enough that replaying
// base + chain stays close to the merged-image size.
const DefaultMaxDepth = 4

// NewLineage creates an empty lineage with the given chain bound
// (0 = DefaultMaxDepth).
func NewLineage(maxDepth int) *Lineage {
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	return &Lineage{
		MaxDepth: maxDepth,
		base:     &Epoch{ID: 0, Blocks: make(map[int64]int64)},
		nextID:   1,
	}
}

// Commit appends one incremental checkpoint — the blocks dirtied since
// the previous commit and the dirty memory pages saved alongside — and
// prunes the chain back under MaxDepth. It returns the committed epoch.
func (l *Lineage) Commit(blocks map[int64]int64, memPages int) *Epoch {
	cp := make(map[int64]int64, len(blocks))
	for vba, tag := range blocks {
		cp[vba] = tag
	}
	e := &Epoch{ID: l.nextID, Blocks: cp, MemPages: memPages}
	l.nextID++
	l.chain = append(l.chain, e)
	l.prune()
	return e
}

// prune folds the oldest chain epochs into the base until the chain is
// back under MaxDepth. Overlapping blocks deduplicate (the newer epoch
// wins), which is what keeps replay bytes bounded.
func (l *Lineage) prune() {
	for len(l.chain) > l.MaxDepth {
		oldest := l.chain[0]
		l.chain = l.chain[1:]
		for vba, tag := range oldest.Blocks {
			l.base.Blocks[vba] = tag
		}
		l.base.MemPages += oldest.MemPages
		l.base.ID = oldest.ID
		l.MergedBytes += oldest.DiskBytes()
	}
}

// Depth reports the current chain length (excluding the base).
func (l *Lineage) Depth() int { return len(l.chain) }

// Epochs reports how many epochs were ever committed.
func (l *Lineage) Epochs() int { return l.nextID - 1 }

// ReplayBytes reports the disk bytes a swap-in must move to reconstruct
// the node's state: the merged base plus every chain epoch, in order.
// Deduplication only happens at prune time, so blocks rewritten across
// un-pruned epochs are counted (and moved) once per epoch — the price
// of keeping commits cheap, bounded by MaxDepth.
func (l *Lineage) ReplayBytes() int64 {
	n := l.base.DiskBytes()
	for _, e := range l.chain {
		n += e.DiskBytes()
	}
	return n
}

// Materialize replays base + chain in commit order and returns the
// reconstructed content view. Against Volume.Snapshot this is the
// byte-identity check: a block is correct iff its content tag matches.
func (l *Lineage) Materialize() map[int64]int64 {
	out := make(map[int64]int64, len(l.base.Blocks))
	for vba, tag := range l.base.Blocks {
		out[vba] = tag
	}
	for _, e := range l.chain {
		for vba, tag := range e.Blocks {
			out[vba] = tag
		}
	}
	return out
}

// Drop removes blocks from every epoch (base and chain) — free-block
// elimination applied retroactively to the server-side history, so a
// replay does not resurrect blocks the filesystem has freed.
func (l *Lineage) Drop(isFree func(vba int64) bool) {
	if isFree == nil {
		return
	}
	drop := func(e *Epoch) {
		for vba := range e.Blocks {
			if isFree(vba) {
				delete(e.Blocks, vba)
			}
		}
	}
	drop(l.base)
	for _, e := range l.chain {
		drop(e)
	}
}

// String summarizes the lineage for diagnostics.
func (l *Lineage) String() string {
	return fmt.Sprintf("lineage[base=%dMB chain=%d replay=%dMB]",
		l.base.DiskBytes()>>20, len(l.chain), l.ReplayBytes()>>20)
}
