package storage

import (
	"fmt"

	"emucheck/internal/sim"
)

// BackendKind selects the physical tier committed checkpoint-chain
// segments live on.
type BackendKind int

// Storage tiers.
const (
	// MemKind is the in-process store — the legacy behavior: chain
	// contents are metadata only, and every transfer rides the shared
	// control-LAN pipe exactly as before backends existed.
	MemKind BackendKind = iota
	// DiskKind is the node-local snapshot disk (the paper's second
	// local disk, §6): committed segments land next to the node at
	// seek + bandwidth cost and restores never cross the control LAN —
	// until the disk's capacity budget is exhausted and segments spill
	// to the shared pool.
	DiskKind
	// RemoteKind is the shared pool store reached over the control
	// LAN: segment bytes ride the file server's fair-share pipe (the
	// existing xfer cost model), plus a per-request round trip.
	RemoteKind
)

// String names the kind as scenario files and reports spell it.
func (k BackendKind) String() string {
	switch k {
	case DiskKind:
		return "disk"
	case RemoteKind:
		return "remote"
	default:
		return "mem"
	}
}

// ParseBackendKind parses a scenario-file backend name. The empty
// string selects the legacy in-process store.
func ParseBackendKind(s string) (BackendKind, error) {
	switch s {
	case "", "mem":
		return MemKind, nil
	case "disk":
		return DiskKind, nil
	case "remote":
		return RemoteKind, nil
	}
	return MemKind, fmt.Errorf("storage: unknown backend %q (want mem, disk or remote)", s)
}

// Backend is the physical home of committed checkpoint-chain segments.
// The ChainStore remains the authoritative metadata index (refcounts,
// content addresses); a Backend decides where the segment *bytes* live
// and what moving them costs. Implementations only price and account —
// scheduling the simulated time is the swap pipeline's job, and shared
// control-LAN bandwidth is always charged through the xfer server.
type Backend interface {
	// Kind reports the tier.
	Kind() BackendKind
	// Name labels the tier in stats and reports.
	Name() string
	// PutCost prices writing n bytes to the tier's own medium: zero
	// for mem, seek + bandwidth for the snapshot disk, a per-request
	// round trip for the remote pool (whose bandwidth rides the shared
	// control-LAN pipe and is charged there).
	PutCost(n int64) sim.Time
	// ReadCost prices reading n bytes back off the tier's own medium,
	// with the same conventions as PutCost.
	ReadCost(n int64) sim.Time
	// Put records segment a (n bytes) as stored on the tier. A false
	// return means the tier is out of room (the snapshot disk is over
	// its capacity budget): the segment spills to the shared pool
	// instead and restores must stream it back over the control LAN.
	// Re-putting a resident segment refreshes its size and succeeds.
	Put(a Addr, n int64) bool
	// Fits reports whether n more bytes would fit the tier's remaining
	// capacity, without counting a spill — the upfront placement
	// decision (always true for the unbounded tiers).
	Fits(n int64) bool
	// Has reports whether the tier holds segment a.
	Has(a Addr) bool
	// Delete forgets a segment once its last chain reference is gone.
	Delete(a Addr)
	// StoredBytes reports the tier's resident segment footprint.
	StoredBytes() int64
	// SegmentCount reports how many segments are resident.
	SegmentCount() int
}

// Default cost parameters for the simulated tiers.
const (
	// DefaultSnapshotDiskBytes is the node-local snapshot disk budget
	// (the paper sizes it to hold trees with thousands of nodes; 32 GB
	// keeps several tenants' chains resident without being infinite).
	DefaultSnapshotDiskBytes = 32 << 30
	// DefaultDiskSeek is the per-segment positioning cost on the
	// snapshot disk.
	DefaultDiskSeek = 4 * sim.Millisecond
	// DefaultDiskRate is the snapshot disk's sequential bandwidth in
	// bytes/second.
	DefaultDiskRate = 70 << 20
	// DefaultRemoteRTT is the shared pool's per-request round trip.
	DefaultRemoteRTT = 2 * sim.Millisecond
)

// NewBackend builds a tier of the given kind with default parameters.
func NewBackend(kind BackendKind) Backend {
	switch kind {
	case DiskKind:
		return NewDiskBackend(DefaultSnapshotDiskBytes)
	case RemoteKind:
		return NewRemoteBackend()
	default:
		return NewMemBackend()
	}
}

// segTable is the shared resident-segment index behind every tier.
type segTable struct {
	segs  map[Addr]int64
	bytes int64
}

func newSegTable() segTable { return segTable{segs: make(map[Addr]int64)} }

func (t *segTable) put(a Addr, n int64) {
	if old, ok := t.segs[a]; ok {
		t.bytes -= old
	}
	t.segs[a] = n
	t.bytes += n
}

func (t *segTable) del(a Addr) {
	if old, ok := t.segs[a]; ok {
		t.bytes -= old
		delete(t.segs, a)
	}
}

// MemBackend is the legacy in-process store: segments are metadata
// only, every cost is zero, and capacity is unbounded. Selecting it is
// selecting the pre-backend behavior byte for byte.
type MemBackend struct {
	t segTable
}

// NewMemBackend creates an in-process tier.
func NewMemBackend() *MemBackend { return &MemBackend{t: newSegTable()} }

// Kind reports MemKind.
func (b *MemBackend) Kind() BackendKind { return MemKind }

// Name labels the tier.
func (b *MemBackend) Name() string { return "mem" }

// PutCost is zero: the store is in-process.
func (b *MemBackend) PutCost(int64) sim.Time { return 0 }

// ReadCost is zero: the store is in-process.
func (b *MemBackend) ReadCost(int64) sim.Time { return 0 }

// Put records the segment; the in-process store never fills.
func (b *MemBackend) Put(a Addr, n int64) bool { b.t.put(a, n); return true }

// Fits is always true: the in-process store never fills.
func (b *MemBackend) Fits(int64) bool { return true }

// Has reports segment presence.
func (b *MemBackend) Has(a Addr) bool { _, ok := b.t.segs[a]; return ok }

// Delete forgets a segment.
func (b *MemBackend) Delete(a Addr) { b.t.del(a) }

// StoredBytes reports the resident footprint.
func (b *MemBackend) StoredBytes() int64 { return b.t.bytes }

// SegmentCount reports resident segments.
func (b *MemBackend) SegmentCount() int { return len(b.t.segs) }

// DiskBackend is the node-local snapshot disk tier: committed segments
// land at seek + bandwidth cost without crossing the control LAN, and
// restores read them back the same way. The disk has a capacity
// budget; a Put past it fails and the segment spills to the shared
// pool (counted in SpillSegments/SpillBytes).
type DiskBackend struct {
	// Capacity is the snapshot-disk budget in bytes.
	Capacity int64
	// Seek is the per-segment positioning cost.
	Seek sim.Time
	// Rate is the sequential bandwidth in bytes/second.
	Rate int64

	// SpillSegments counts segments refused for lack of room.
	SpillSegments int64
	// SpillBytes accumulates the refused segments' sizes.
	SpillBytes int64

	t segTable
}

// NewDiskBackend creates a snapshot-disk tier with the given capacity
// (0 = DefaultSnapshotDiskBytes) and default seek/bandwidth costs.
func NewDiskBackend(capacity int64) *DiskBackend {
	if capacity <= 0 {
		capacity = DefaultSnapshotDiskBytes
	}
	return &DiskBackend{
		Capacity: capacity,
		Seek:     DefaultDiskSeek,
		Rate:     DefaultDiskRate,
		t:        newSegTable(),
	}
}

// Kind reports DiskKind.
func (b *DiskBackend) Kind() BackendKind { return DiskKind }

// Name labels the tier.
func (b *DiskBackend) Name() string { return "disk" }

// xferCost prices moving n bytes through a seek + rate medium.
func xferCost(n int64, seek sim.Time, rate int64) sim.Time {
	if n <= 0 {
		return 0
	}
	return seek + sim.Time(float64(n)/float64(rate)*float64(sim.Second))
}

// PutCost prices a snapshot-disk write.
func (b *DiskBackend) PutCost(n int64) sim.Time { return xferCost(n, b.Seek, b.Rate) }

// ReadCost prices a snapshot-disk read.
func (b *DiskBackend) ReadCost(n int64) sim.Time { return xferCost(n, b.Seek, b.Rate) }

// Put records the segment unless it would exceed the capacity budget;
// a refused segment spills to the shared pool. Re-putting a resident
// segment only charges the size difference.
func (b *DiskBackend) Put(a Addr, n int64) bool {
	occupied := b.t.bytes
	if old, ok := b.t.segs[a]; ok {
		occupied -= old
	}
	if occupied+n > b.Capacity {
		b.SpillSegments++
		b.SpillBytes += n
		return false
	}
	b.t.put(a, n)
	return true
}

// Fits reports whether n more bytes stay inside the capacity budget.
func (b *DiskBackend) Fits(n int64) bool { return b.t.bytes+n <= b.Capacity }

// Has reports segment presence.
func (b *DiskBackend) Has(a Addr) bool { _, ok := b.t.segs[a]; return ok }

// Delete forgets a segment, freeing its budget share.
func (b *DiskBackend) Delete(a Addr) { b.t.del(a) }

// StoredBytes reports the resident footprint.
func (b *DiskBackend) StoredBytes() int64 { return b.t.bytes }

// SegmentCount reports resident segments.
func (b *DiskBackend) SegmentCount() int { return len(b.t.segs) }

// RemoteBackend is the shared pool tier: segments live on the file
// server across the control LAN. Capacity is unbounded; the cost of a
// put or get is one round trip here plus the segment bytes through the
// shared fair-share pipe, which the swap pipeline charges via the xfer
// server (so contention with neighbors is priced realistically).
type RemoteBackend struct {
	// RTT is the per-request round trip to the pool.
	RTT sim.Time

	t segTable
}

// NewRemoteBackend creates a shared-pool tier with the default RTT.
func NewRemoteBackend() *RemoteBackend {
	return &RemoteBackend{RTT: DefaultRemoteRTT, t: newSegTable()}
}

// Kind reports RemoteKind.
func (b *RemoteBackend) Kind() BackendKind { return RemoteKind }

// Name labels the tier.
func (b *RemoteBackend) Name() string { return "remote" }

// PutCost is the round trip; bandwidth rides the shared pipe.
func (b *RemoteBackend) PutCost(n int64) sim.Time {
	if n <= 0 {
		return 0
	}
	return b.RTT
}

// ReadCost is the round trip; bandwidth rides the shared pipe.
func (b *RemoteBackend) ReadCost(n int64) sim.Time {
	if n <= 0 {
		return 0
	}
	return b.RTT
}

// Put records the segment; the pool never fills.
func (b *RemoteBackend) Put(a Addr, n int64) bool { b.t.put(a, n); return true }

// Fits is always true: the pool never fills.
func (b *RemoteBackend) Fits(int64) bool { return true }

// Has reports segment presence.
func (b *RemoteBackend) Has(a Addr) bool { _, ok := b.t.segs[a]; return ok }

// Delete forgets a segment.
func (b *RemoteBackend) Delete(a Addr) { b.t.del(a) }

// StoredBytes reports the resident footprint.
func (b *RemoteBackend) StoredBytes() int64 { return b.t.bytes }

// SegmentCount reports resident segments.
func (b *RemoteBackend) SegmentCount() int { return len(b.t.segs) }
