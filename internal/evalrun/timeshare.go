package evalrun

import (
	"fmt"

	"emucheck"
	"emucheck/internal/emulab"
	"emucheck/internal/metrics"
	"emucheck/internal/sim"
)

// TimeshareRow is one scheduling mode's outcome.
type TimeshareRow struct {
	Mode        string  `json:"mode"`
	Completed   int     `json:"completed"`
	UsefulTicks int64   `json:"useful_ticks"`
	LostTicks   int64   `json:"lost_ticks"`
	Utilization float64 `json:"utilization"`
	MeanWaitS   float64 `json:"mean_queue_wait_s"`
	Preemptions int     `json:"preemptions"`
	// AllDoneS is when the last tenant finished (0 = never within the
	// horizon).
	AllDoneS float64 `json:"all_done_s"`
	// MovedMB is the total file-server traffic (both directions) the
	// mode generated across every swap cycle.
	MovedMB float64 `json:"moved_mb"`
	// PreemptedMB is the scheduler's estimated transfer bill for its
	// involuntary parks — proportional to dirtied state under
	// incremental swapping, to full images under full-copy.
	PreemptedMB float64 `json:"preempted_mb"`
}

// timeshareMode selects the swap machinery under measurement.
type timeshareMode int

const (
	statefulIncr timeshareMode = iota // dirty-delta lineage pipeline
	statefulFull                      // full-copy stateful baseline
	stateless                         // classic Emulab swap-out (state lost)
)

func (m timeshareMode) String() string {
	switch m {
	case statefulIncr:
		return "stateful-incr"
	case statefulFull:
		return "stateful-full"
	default:
		return "stateless"
	}
}

// TimeshareResult is the multi-tenancy benchmark: an oversubscribed
// pool (three 2-node tenants over 4 nodes, each owing a fixed amount of
// work) scheduled three ways. Stateful tenants accumulate progress
// across preemptions and all finish; the incremental variant moves only
// dirty deltas per swap cycle, so it finishes sooner and moves strictly
// fewer bytes than full copies. Stateless tenants restart from scratch
// at every re-admission — under sustained contention, work shorter than
// one service window is the only work that ever completes (§2, §5).
type TimeshareResult struct {
	Pool        int     `json:"pool"`
	Tenants     int     `json:"tenants"`
	NodesEach   int     `json:"nodes_each"`
	TargetTicks int64   `json:"target_ticks"`
	HorizonS    float64 `json:"horizon_s"`

	StatefulIncr TimeshareRow `json:"stateful_incremental"`
	Stateful     TimeshareRow `json:"stateful"`
	Stateless    TimeshareRow `json:"stateless"`
}

// runTimeshareMode runs one scheduling mode to completion or the horizon.
func runTimeshareMode(seed int64, mode timeshareMode, target int64, horizon sim.Time) TimeshareRow {
	const pool, tenants = 4, 3
	c := emucheck.NewCluster(pool, seed, emucheck.FIFO)
	c.Stateless = mode == stateless
	c.Incremental = mode == statefulIncr
	c.Sched.MinResidency = 45 * sim.Second

	names := []string{"t1", "t2", "t3"}
	counts := make([]int64, tenants) // progress of the current admission
	lost := make([]int64, tenants)   // ticks discarded by stateless restarts
	done := make([]bool, tenants)
	for i, name := range names {
		i, name := i, name
		a, b := name+"a", name+"b"
		sc := emucheck.Scenario{
			Spec: emulab.Spec{
				Name:  name,
				Nodes: []emulab.NodeSpec{{Name: a, Swappable: true}, {Name: b, Swappable: true}},
				Links: []emulab.LinkSpec{{A: a, B: b}},
			},
			Setup: func(s *emucheck.Session) {
				// A stateless re-admission reboots from the golden image:
				// whatever the previous incarnation computed is gone.
				lost[i] += counts[i]
				counts[i] = 0
				k := s.Kernel(a)
				var step func()
				step = func() {
					k.Usleep(100*sim.Millisecond, func() {
						counts[i]++
						c.Touch(name)
						if counts[i] >= target {
							if err := c.Finish(name); err == nil {
								done[i] = true
								return
							}
						}
						step()
					})
				}
				step()
			},
		}
		if _, err := c.Submit(sc, 0); err != nil {
			panic("timeshare: " + err.Error())
		}
	}

	var allDoneAt sim.Time
	for c.Now() < horizon {
		c.RunFor(5 * sim.Second)
		if c.Sched.AllDone() {
			allDoneAt = c.Now()
			break
		}
	}

	row := TimeshareRow{
		Mode:        mode.String(),
		Utilization: c.Utilization(),
		MeanWaitS:   c.Sched.MeanQueueWait().Seconds(),
		Preemptions: c.Sched.Preemptions,
		AllDoneS:    allDoneAt.Seconds(),
		MovedMB:     float64(c.TB.Server.Received+c.TB.Server.Served) / (1 << 20),
		PreemptedMB: float64(c.Sched.PreemptedBytes) / (1 << 20),
	}
	for i := range names {
		if done[i] {
			row.Completed++
			row.UsefulTicks += target
		}
		row.LostTicks += lost[i]
	}
	return row
}

// Timeshare runs the benchmark; target is each tenant's owed work in
// 100 ms ticks (the default 900 means 90 s of computation — twice the
// service window, so stateless restarts can never bank it).
func Timeshare(seed int64, target int64) *TimeshareResult {
	if target <= 0 {
		target = 900
	}
	horizon := 30 * sim.Minute
	return &TimeshareResult{
		Pool: 4, Tenants: 3, NodesEach: 2,
		TargetTicks:  target,
		HorizonS:     horizon.Seconds(),
		StatefulIncr: runTimeshareMode(seed, statefulIncr, target, horizon),
		Stateful:     runTimeshareMode(seed, statefulFull, target, horizon),
		Stateless:    runTimeshareMode(seed, stateless, target, horizon),
	}
}

// Render prints the comparison.
func (r *TimeshareResult) Render() string {
	t := &metrics.Table{Header: []string{"mode", "completed", "useful ticks", "lost ticks", "util %", "mean wait (s)", "preemptions", "moved MB", "preempted MB", "all done (s)"}}
	for _, row := range []TimeshareRow{r.StatefulIncr, r.Stateful, r.Stateless} {
		doneAt := "never"
		if row.AllDoneS > 0 {
			doneAt = fmt.Sprintf("%.0f", row.AllDoneS)
		}
		t.AddRow(row.Mode, fmt.Sprintf("%d/%d", row.Completed, r.Tenants), row.UsefulTicks, row.LostTicks,
			fmt.Sprintf("%.0f", row.Utilization*100), fmt.Sprintf("%.1f", row.MeanWaitS), row.Preemptions,
			fmt.Sprintf("%.0f", row.MovedMB), fmt.Sprintf("%.0f", row.PreemptedMB), doneAt)
	}
	s := fmt.Sprintf("%d tenants x %d nodes over a %d-node pool; each owes %d ticks (%.0f s of work)\n",
		r.Tenants, r.NodesEach, r.Pool, r.TargetTicks, float64(r.TargetTicks)/10)
	return s + t.String()
}
