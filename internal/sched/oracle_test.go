package sched

// The legacy-oracle equivalence test: a test-only copy of the
// scheduler's pre-index algorithms (slice admission queue with O(n)
// splices, full-job-table victim scan with a stable insertion sort)
// driven in lockstep with the real indexed scheduler over randomized
// seeded workloads. The indexed structures exist purely for speed —
// every decision (admission order, victim choice, preemption count,
// queue-wait accounting) must be identical to the legacy scan, and
// this test fails on the first divergence in the hook-invocation
// trace.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"emucheck/internal/sim"
)

// ---------------------------------------------------------------------
// Oracle: the scheduler exactly as it was before the indexed hot path.
// ---------------------------------------------------------------------

type oracleJob struct {
	name        string
	need, pri   int
	preemptible bool
	hooks       Hooks

	state        State
	gang         int
	admittedAt   sim.Time
	runningSince sim.Time
	lastActive   sim.Time
	queuedSince  sim.Time
	queuedWait   sim.Time
	preemptions  int
	admissions   int
	lastParkCost int64
	autoResume   bool
}

func (j *oracleJob) parkCost() int64 {
	if j.hooks.ParkCost == nil {
		return 0
	}
	return j.hooks.ParkCost()
}

type oracleScheduler struct {
	s            *sim.Simulator
	capacity     int
	policy       Policy
	minResidency sim.Time

	free          int
	jobs          []*oracleJob
	queue         []*oracleJob
	parksInFlight int
	nextGang      int

	gangAdmissions int
	admissionsN    int
	preemptionsN   int
	preemptedBytes int64

	wake *sim.Event
}

func newOracle(s *sim.Simulator, capacity int, policy Policy) *oracleScheduler {
	return &oracleScheduler{
		s: s, capacity: capacity, policy: policy,
		minResidency: 10 * sim.Second,
		free:         capacity,
	}
}

func (d *oracleScheduler) job(name string) *oracleJob {
	for i := len(d.jobs) - 1; i >= 0; i-- {
		if d.jobs[i].name == name {
			return d.jobs[i]
		}
	}
	return nil
}

func (d *oracleScheduler) enroll(j *oracleJob) {
	now := d.s.Now()
	j.state = Queued
	j.queuedSince = now
	j.lastActive = now
	j.autoResume = true
	d.jobs = append(d.jobs, j)
	d.queue = append(d.queue, j)
}

func (d *oracleScheduler) submit(j *oracleJob) {
	d.enroll(j)
	d.kick()
}

func (d *oracleScheduler) submitGang(jobs []*oracleJob) {
	d.nextGang++
	for _, j := range jobs {
		j.gang = d.nextGang
		d.enroll(j)
	}
	d.kick()
}

func (d *oracleScheduler) touch(name string) {
	if j := d.job(name); j != nil {
		j.lastActive = d.s.Now()
	}
}

func (d *oracleScheduler) parkVoluntary(name string) error {
	j := d.job(name)
	if j == nil || j.state != Running || j.hooks.Park == nil {
		return fmt.Errorf("oracle: cannot park %q", name)
	}
	j.autoResume = false
	j.lastParkCost = j.parkCost()
	d.park(j)
	return nil
}

func (d *oracleScheduler) unpark(name string) error {
	j := d.job(name)
	if j == nil || j.state != Parked {
		return fmt.Errorf("oracle: cannot unpark %q", name)
	}
	j.autoResume = true
	d.enqueue(j)
	d.kick()
	return nil
}

func (d *oracleScheduler) finish(name string) error {
	j := d.job(name)
	if j == nil {
		return fmt.Errorf("oracle: no job %q", name)
	}
	switch j.state {
	case Running:
		d.free += j.need
	case Parked:
	case Queued:
		for i, q := range d.queue {
			if q == j {
				d.queue = append(d.queue[:i], d.queue[i+1:]...)
				break
			}
		}
		j.queuedWait += d.s.Now() - j.queuedSince
	default:
		return fmt.Errorf("oracle: job %q is %v, cannot finish", name, j.state)
	}
	j.state = Done
	d.kick()
	return nil
}

func (d *oracleScheduler) allDone() bool {
	for _, j := range d.jobs {
		if j.state != Done {
			return false
		}
	}
	return len(d.jobs) > 0
}

func (d *oracleScheduler) enqueue(j *oracleJob) {
	j.state = Queued
	j.queuedSince = d.s.Now()
	d.queue = append(d.queue, j)
}

func (d *oracleScheduler) kick() {
	for len(d.queue) > 0 {
		head := d.queue[0]
		members, need := 1, head.need
		if head.gang != 0 {
			for _, q := range d.queue[1:] {
				if q.gang != head.gang {
					break
				}
				members++
				need += q.need
			}
		}
		if d.free >= need {
			if members > 1 {
				d.gangAdmissions++
			}
			for i := 0; i < members; i++ {
				d.admit(d.queue[0])
			}
			continue
		}
		if d.parksInFlight == 0 {
			d.tryPreempt(head, need)
		}
		return
	}
}

func (d *oracleScheduler) admit(j *oracleJob) {
	now := d.s.Now()
	d.queue = d.queue[1:]
	j.queuedWait += now - j.queuedSince
	d.free -= j.need
	j.admittedAt = now
	j.lastActive = now
	j.admissions++
	d.admissionsN++
	live := func(err error) {
		if err != nil {
			d.free += j.need
			if j.state == Starting {
				j.state = Done
			} else {
				j.state = Parked
				j.autoResume = false
			}
			d.kick()
			return
		}
		j.state = Running
		j.runningSince = d.s.Now()
		j.lastActive = d.s.Now()
		d.kick()
	}
	if j.admissions > 1 {
		j.state = Resuming
		j.hooks.Resume(live)
		return
	}
	j.state = Starting
	j.hooks.Start(live)
}

// victims is the legacy linear scan: every submitted job filtered, in
// submit order, then stable-insertion-sorted by policy.
func (d *oracleScheduler) victims(candidate *oracleJob) (pool []*oracleJob, nextEligible sim.Time) {
	now := d.s.Now()
	nextEligible = sim.Never
	for _, j := range d.jobs {
		if j.state != Running || !j.preemptible || j.hooks.Park == nil {
			continue
		}
		if d.policy == Priority && j.pri >= candidate.pri {
			continue
		}
		if now-j.runningSince < d.minResidency {
			if t := j.runningSince + d.minResidency; t < nextEligible {
				nextEligible = t
			}
			continue
		}
		pool = append(pool, j)
	}
	less := func(a, b *oracleJob) bool {
		switch d.policy {
		case IdleFirst:
			if a.lastActive != b.lastActive {
				return a.lastActive < b.lastActive
			}
			if ca, cb := a.parkCost(), b.parkCost(); ca != cb {
				return ca < cb
			}
		case Priority:
			if a.pri != b.pri {
				return a.pri < b.pri
			}
		}
		return a.admittedAt < b.admittedAt
	}
	for i := 1; i < len(pool); i++ {
		for k := i; k > 0 && less(pool[k], pool[k-1]); k-- {
			pool[k], pool[k-1] = pool[k-1], pool[k]
		}
	}
	return pool, nextEligible
}

func (d *oracleScheduler) tryPreempt(head *oracleJob, need int) {
	shortfall := need - d.free
	pool, nextEligible := d.victims(head)
	var chosen []*oracleJob
	freed := 0
	for _, v := range pool {
		if freed >= shortfall {
			break
		}
		chosen = append(chosen, v)
		freed += v.need
	}
	if freed < shortfall {
		if nextEligible < sim.Never {
			d.wakeAt(nextEligible)
		}
		return
	}
	for _, v := range chosen {
		v.preemptions++
		d.preemptionsN++
		cost := v.parkCost()
		v.lastParkCost = cost
		d.preemptedBytes += cost
		d.park(v)
	}
}

func (d *oracleScheduler) park(v *oracleJob) {
	v.state = Parking
	v.gang = 0
	d.parksInFlight++
	v.hooks.Park(func(err error) {
		if v.state != Parking {
			return
		}
		d.parksInFlight--
		if err != nil {
			v.state = Running
			v.runningSince = d.s.Now()
			d.kick()
			return
		}
		v.state = Parked
		d.free += v.need
		if v.autoResume {
			d.enqueue(v)
		}
		d.kick()
	})
}

func (d *oracleScheduler) wakeAt(t sim.Time) {
	if d.wake != nil && d.wake.When() <= t && !d.wake.Cancelled() {
		return
	}
	if d.wake != nil {
		d.s.Cancel(d.wake)
	}
	d.wake = d.s.At(t, "sched.wake", func() {
		d.wake = nil
		d.kick()
	})
}

// ---------------------------------------------------------------------
// Adapter: one workload state machine drives either implementation.
// ---------------------------------------------------------------------

type fleetAPI interface {
	submit(r *eqRunner)
	submitGang(rs []*eqRunner)
	touch(name string)
	park(name string) error
	unpark(name string) error
	finish(name string) error
	state(name string) State
	allDone() bool
	summary() string
}

type realFleet struct{ d *Scheduler }

func (f *realFleet) job(r *eqRunner) *Job {
	return &Job{Name: r.spec.name, Need: r.spec.need, Priority: r.spec.pri,
		Preemptible: r.spec.preemptible, Hooks: r.hooks()}
}
func (f *realFleet) submit(r *eqRunner) {
	if err := f.d.Submit(f.job(r)); err != nil {
		panic(err)
	}
}
func (f *realFleet) submitGang(rs []*eqRunner) {
	jobs := make([]*Job, len(rs))
	for i, r := range rs {
		jobs[i] = f.job(r)
	}
	if err := f.d.SubmitGang(jobs); err != nil {
		panic(err)
	}
}
func (f *realFleet) touch(name string)        { f.d.Touch(name) }
func (f *realFleet) park(name string) error   { return f.d.Park(name) }
func (f *realFleet) unpark(name string) error { return f.d.Unpark(name) }
func (f *realFleet) finish(name string) error { return f.d.Finish(name) }
func (f *realFleet) state(name string) State  { return f.d.Job(name).State() }
func (f *realFleet) allDone() bool            { return f.d.AllDone() }
func (f *realFleet) summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "adm=%d preempt=%d gangs=%d bytes=%d wait=%d util=%.9f\n",
		f.d.Admissions, f.d.Preemptions, f.d.GangAdmissions,
		f.d.PreemptedBytes, f.d.MeanQueueWait(), f.d.Utilization())
	for _, j := range f.d.Jobs() {
		fmt.Fprintf(&b, "%s state=%v adm=%d pre=%d wait=%d cost=%d\n",
			j.Name, j.State(), j.Admissions(), j.Preemptions(), j.QueueWait(), j.LastParkCost())
	}
	return b.String()
}

type oracleFleet struct{ d *oracleScheduler }

func (f *oracleFleet) job(r *eqRunner) *oracleJob {
	return &oracleJob{name: r.spec.name, need: r.spec.need, pri: r.spec.pri,
		preemptible: r.spec.preemptible, hooks: r.hooks()}
}
func (f *oracleFleet) submit(r *eqRunner) { f.d.submit(f.job(r)) }
func (f *oracleFleet) submitGang(rs []*eqRunner) {
	jobs := make([]*oracleJob, len(rs))
	for i, r := range rs {
		jobs[i] = f.job(r)
	}
	f.d.submitGang(jobs)
}
func (f *oracleFleet) touch(name string)        { f.d.touch(name) }
func (f *oracleFleet) park(name string) error   { return f.d.parkVoluntary(name) }
func (f *oracleFleet) unpark(name string) error { return f.d.unpark(name) }
func (f *oracleFleet) finish(name string) error { return f.d.finish(name) }
func (f *oracleFleet) state(name string) State  { return f.d.job(name).state }
func (f *oracleFleet) allDone() bool            { return f.d.allDone() }
func (f *oracleFleet) summary() string {
	var b strings.Builder
	var wait sim.Time
	for _, j := range f.d.jobs {
		w := j.queuedWait
		if j.state == Queued {
			w += f.d.s.Now() - j.queuedSince
		}
		wait += w
	}
	if len(f.d.jobs) > 0 {
		wait /= sim.Time(len(f.d.jobs))
	}
	// The oracle does not integrate utilization; print the decision
	// ledgers and per-job outcomes (the real side's util is implied by
	// identical decision sequences and is additionally covered by the
	// scale digest tests).
	fmt.Fprintf(&b, "adm=%d preempt=%d gangs=%d bytes=%d wait=%d\n",
		f.d.admissionsN, f.d.preemptionsN, f.d.gangAdmissions, f.d.preemptedBytes, wait)
	for _, j := range f.d.jobs {
		w := j.queuedWait
		if j.state == Queued {
			w += f.d.s.Now() - j.queuedSince
		}
		fmt.Fprintf(&b, "%s state=%v adm=%d pre=%d wait=%d cost=%d\n",
			j.name, j.state, j.admissions, j.preemptions, w, j.lastParkCost)
	}
	return b.String()
}

// eqSpec is one randomized tenant, drawn up front by the test's own
// RNG — the simulation itself consumes no randomness, so both
// implementations see a bit-identical stimulus.
type eqSpec struct {
	name        string
	need, pri   int
	preemptible bool
	hog         bool
	owed        int // hog: total ticks
	burstLen    int // bursty: ticks per burst
	cycles      int
	interval    sim.Time
	idleDur     sim.Time
	startD      sim.Time
	parkD       sim.Time
	resumeD     sim.Time
	costBase    int64
}

// eqRunner is the tenant state machine (mirroring the evalrun scale
// fleet): burst of activity ticks, then a voluntary park and an idle
// sleep, across cycles; hogs tick until their owed work is done.
type eqRunner struct {
	api   fleetAPI
	s     *sim.Simulator
	trace *[]string
	spec  eqSpec

	timer      *sim.Timer
	ticks      int
	burstTicks int
	cycle      int
	sleeping   bool
}

func (r *eqRunner) log(ev string) {
	*r.trace = append(*r.trace, fmt.Sprintf("%d %s %s", r.s.Now(), ev, r.spec.name))
}

// hooks records each mechanism invocation at decision time — the trace
// the two implementations must agree on.
func (r *eqRunner) hooks() Hooks {
	h := Hooks{
		Start: func(done func(error)) {
			r.log("start")
			r.s.After(r.spec.startD, "eq.start", func() {
				done(nil)
				r.timer.Reset(r.spec.interval)
			})
		},
		ParkCost: func() int64 { return r.spec.costBase + int64(r.ticks)*4096 },
	}
	if r.spec.preemptible {
		h.Park = func(done func(error)) {
			r.log("park")
			r.s.After(r.spec.parkD, "eq.park", func() {
				r.timer.Stop()
				done(nil)
				if r.sleeping {
					r.timer.Reset(r.spec.idleDur)
				}
			})
		}
		h.Resume = func(done func(error)) {
			r.log("resume")
			r.s.After(r.spec.resumeD, "eq.resume", func() {
				done(nil)
				r.timer.Reset(r.spec.interval)
			})
		}
	}
	return h
}

func (r *eqRunner) fire() {
	if r.sleeping {
		r.sleeping = false
		if err := r.api.unpark(r.spec.name); err != nil {
			panic(err)
		}
		return
	}
	if r.api.state(r.spec.name) != Running {
		return
	}
	r.ticks++
	r.api.touch(r.spec.name)
	if r.spec.hog {
		if r.ticks >= r.spec.owed {
			r.retire()
			return
		}
	} else {
		r.burstTicks++
		if r.burstTicks >= r.spec.burstLen {
			r.burstTicks = 0
			r.cycle++
			if r.cycle >= r.spec.cycles {
				r.retire()
				return
			}
			r.sleeping = true
			if err := r.api.park(r.spec.name); err != nil {
				panic(err)
			}
			return
		}
	}
	r.timer.Reset(r.spec.interval)
}

func (r *eqRunner) retire() {
	r.timer.Stop()
	r.log("finish")
	if err := r.api.finish(r.spec.name); err != nil {
		panic(err)
	}
}

// genSpecs draws a randomized tenant population. Non-preemptible
// tenants are always hogs (they cannot park); every sixth index starts
// a 3-tenant gang.
func genSpecs(seed int64, n int) []eqSpec {
	rng := rand.New(rand.NewSource(seed))
	specs := make([]eqSpec, n)
	for i := range specs {
		sp := eqSpec{
			name:        fmt.Sprintf("j%d", i),
			need:        1 + rng.Intn(3),
			pri:         rng.Intn(4),
			preemptible: rng.Intn(10) != 0,
			hog:         rng.Intn(5) == 0,
			owed:        60 + rng.Intn(120),
			burstLen:    10 + rng.Intn(20),
			cycles:      1 + rng.Intn(3),
			interval:    80*sim.Millisecond + sim.Time(i)*7*sim.Millisecond,
			idleDur:     3*sim.Second + sim.Time(rng.Intn(4000))*sim.Millisecond,
			startD:      1*sim.Second + sim.Time(rng.Intn(900))*sim.Millisecond,
			parkD:       500*sim.Millisecond + sim.Time(rng.Intn(700))*sim.Millisecond,
			resumeD:     800*sim.Millisecond + sim.Time(rng.Intn(900))*sim.Millisecond,
			costBase:    int64(1+rng.Intn(64)) << 20,
		}
		if !sp.preemptible {
			sp.hog = true
		}
		specs[i] = sp
	}
	return specs
}

// runEquivalence drives one implementation over the spec'd workload
// and returns the hook trace plus the final-state summary.
func runEquivalence(seed int64, policy Policy, specs []eqSpec, build func(*sim.Simulator) fleetAPI) ([]string, string) {
	s := sim.New(seed)
	api := build(s)
	var trace []string
	runners := make([]*eqRunner, len(specs))
	for i, sp := range specs {
		r := &eqRunner{api: api, s: s, trace: &trace, spec: sp}
		r.timer = s.NewTimer("eq.tick", r.fire)
		runners[i] = r
	}
	i := 0
	for i < len(runners) {
		if i%6 == 0 && i+3 <= len(runners) {
			api.submitGang(runners[i : i+3])
			i += 3
			continue
		}
		api.submit(runners[i])
		i++
	}
	for s.Now() < 15*sim.Minute && !api.allDone() {
		s.RunFor(5 * sim.Second)
	}
	return trace, api.summary()
}

// TestIndexedSchedulerMatchesLegacyOracle is the property test: for
// random seeded workloads across every policy (with gangs, voluntary
// parks, preemptions, and non-preemptible hogs in the mix), the
// indexed scheduler's hook-invocation trace — admission order, victim
// order, everything — must be identical to the legacy linear-scan
// oracle's, and so must the final per-job accounting.
func TestIndexedSchedulerMatchesLegacyOracle(t *testing.T) {
	for _, policy := range []Policy{FIFO, IdleFirst, Priority} {
		for _, seed := range []int64{1, 7, 42} {
			specs := genSpecs(seed, 17)
			capacity := 10 // >= the worst-case 3x3-need gang, still heavily contended
			gotTrace, gotSum := runEquivalence(seed, policy, specs, func(s *sim.Simulator) fleetAPI {
				d := New(s, capacity, policy)
				d.MinResidency = 5 * sim.Second
				return &realFleet{d: d}
			})
			wantTrace, wantSum := runEquivalence(seed, policy, specs, func(s *sim.Simulator) fleetAPI {
				o := newOracle(s, capacity, policy)
				o.minResidency = 5 * sim.Second
				return &oracleFleet{d: o}
			})
			if len(gotTrace) == 0 {
				t.Fatalf("%v seed %d: empty trace", policy, seed)
			}
			for i := 0; i < len(gotTrace) || i < len(wantTrace); i++ {
				g, w := "<end>", "<end>"
				if i < len(gotTrace) {
					g = gotTrace[i]
				}
				if i < len(wantTrace) {
					w = wantTrace[i]
				}
				if g != w {
					t.Fatalf("%v seed %d: trace diverges at %d:\nindexed: %s\noracle:  %s",
						policy, seed, i, g, w)
				}
			}
			// The summaries share every line except the real side's
			// trailing util field (the oracle does not integrate it).
			stripUtil := strings.SplitN(gotSum, " util=", 2)[0] + gotSum[strings.Index(gotSum, "\n"):]
			if stripUtil != wantSum {
				t.Fatalf("%v seed %d: final accounting diverged:\nindexed:\n%s\noracle:\n%s",
					policy, seed, gotSum, wantSum)
			}
		}
	}
}

// BenchmarkVictimSelection measures one victim-selection decision with
// n preemptible running jobs: the legacy full-table scan plus stable
// insertion sort against the indexed candidate set plus heap build.
// The docs/scale.md complexity table quotes these numbers.
func BenchmarkVictimSelection(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		setup := func() (*Scheduler, *oracleScheduler, *Job, *oracleJob) {
			s := sim.New(1)
			d := New(s, n+1, IdleFirst)
			d.MinResidency = 0
			o := newOracle(s, n+1, IdleFirst)
			o.minResidency = 0
			for i := 0; i < n; i++ {
				cost := int64(i%97) << 12
				hooks := Hooks{
					Start:    func(done func(error)) { done(nil) },
					Park:     func(done func(error)) { done(nil) },
					Resume:   func(done func(error)) { done(nil) },
					ParkCost: func() int64 { return cost },
				}
				j := &Job{Name: fmt.Sprintf("v%d", i), Need: 1, Preemptible: true, Hooks: hooks}
				if err := d.Submit(j); err != nil {
					b.Fatal(err)
				}
				o.submit(&oracleJob{name: j.Name, need: 1, preemptible: true, hooks: hooks})
			}
			s.Run()
			cand := &Job{Name: "cand", Need: 1}
			return d, o, cand, &oracleJob{name: "cand", need: 1}
		}
		d, o, cj, oj := setup()
		b.Run(fmt.Sprintf("legacy-scan/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o.victims(oj)
			}
		})
		b.Run(fmt.Sprintf("indexed-heap/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d.victims(cj)
			}
		})
	}
}
