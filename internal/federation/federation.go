// Package federation shards one simulated testbed fleet into N
// federated facilities and runs them as a conservative parallel
// discrete-event simulation (ROADMAP item 3, scale-out).
//
// Each Facility is a self-contained world — its own sim.Simulator,
// scheduler, control-LAN bus and delta cache — so facilities can
// advance concurrently on separate goroutines. The only coupling is
// WAN traffic, and every WAN link declares a minimum latency of at
// least the lookahead window L: a message emitted during the window
// [T, T+L) cannot arrive before T+L, so each world advances to the
// barrier without ever observing a peer's present (sim.Windows). At
// the barrier, collected messages are sorted into canonical (when,
// facility, seq) order, priced through their WAN link, and injected
// into the destination worlds. The worker count therefore changes
// wall-clock only: a run at 8 facility-workers is byte-identical to
// the serial reference at 1, which the digest tests pin.
//
// On top of the shards rides the federation data plane:
//
//   - a shared global pool (storage.RemoteBackend) holding every
//     parked tenant's checkpoint chain, the authority that makes a
//     tenant restorable anywhere in the federation;
//   - cross-facility migration of parked tenants, decided at barriers
//     by a load-balancing controller and shipped over the WAN with
//     optional storage.DeltaCache warm-up at the destination, so the
//     eventual restore replays locally instead of re-streaming from
//     the pool;
//   - a global admission layer that places each new tenant on the
//     least-loaded facility (sched.Demand).
package federation

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"emucheck/internal/notify"
	"emucheck/internal/sched"
	"emucheck/internal/sim"
	"emucheck/internal/storage"
	"emucheck/internal/swap"
	"emucheck/internal/xfer"
)

// DefaultLookahead is the conservative window width used when Config
// leaves Lookahead zero (and the floor a default WAN latency sits at).
const DefaultLookahead = 250 * sim.Millisecond

// Config sizes one federated run. Zero values take defaults; see
// withDefaults.
type Config struct {
	// Facilities is the shard count N (default 1: the single-world
	// reference); Tenants the fleet size across the federation.
	Facilities int
	Tenants    int
	// PoolPer is each facility's hardware pool; 0 sizes it like the
	// scale benchmark: clamp(perFacilityTenants/4, 4, 256).
	PoolPer int
	Seed    int64
	// Workers is the facility-worker pool width: 1 (default) is the
	// serial reference, 0 means GOMAXPROCS. Never affects results.
	Workers int
	// Lookahead is the conservative window L (default 250 ms);
	// WANLatency the per-link propagation delay (default L; must be
	// >= L, validated); WANRate the link bandwidth (default 1 Gbps).
	Lookahead  sim.Time
	WANLatency sim.Time
	WANRate    int64
	// CacheBytes is each facility's delta-cache capacity (default 64 MB).
	CacheBytes int64
	// Migration enables the barrier-time load balancer; WarmUp makes
	// migrations pre-seed the destination cache with the tenant's
	// chain. MigrationGap is the live-demand imbalance that triggers a
	// migration (default 4).
	Migration    bool
	WarmUp       bool
	MigrationGap int
	// Horizon bounds the run (default 20 simulated minutes); the run
	// stops early once every tenant finished.
	Horizon sim.Time
}

func (cfg Config) withDefaults() Config {
	if cfg.Facilities <= 0 {
		cfg.Facilities = 1
	}
	if cfg.Tenants <= 0 {
		panic("federation: config needs a positive tenant count")
	}
	if cfg.Workers < 0 {
		cfg.Workers = 1
	}
	if cfg.Lookahead <= 0 {
		cfg.Lookahead = DefaultLookahead
	}
	if cfg.WANLatency == 0 {
		cfg.WANLatency = cfg.Lookahead
	}
	if cfg.WANLatency < cfg.Lookahead {
		panic(fmt.Sprintf("federation: WAN latency %v below lookahead %v breaks the conservative window",
			cfg.WANLatency, cfg.Lookahead))
	}
	if cfg.WANRate <= 0 {
		cfg.WANRate = xfer.DefaultWANRate
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.PoolPer <= 0 {
		per := cfg.Tenants / cfg.Facilities / 4
		if per < 4 {
			per = 4
		}
		if per > 256 {
			per = 256
		}
		cfg.PoolPer = per
	}
	if cfg.MigrationGap <= 0 {
		cfg.MigrationGap = 4
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 20 * sim.Minute
	}
	return cfg
}

// msgKind discriminates barrier-exchanged messages.
type msgKind uint8

const (
	msgSync    msgKind = iota // cross-facility workload chatter
	msgMigrate                // parked-tenant handoff
)

// Message is one cross-facility WAN message, collected in the source
// facility's outbox during a window and routed at the barrier.
type Message struct {
	Kind msgKind
	// When is the send time, Src/Seq the canonical-order key within
	// it, Dst the destination facility.
	When     sim.Time
	Src, Dst int
	Seq      int64
	// Bytes rides the WAN link's cost model.
	Bytes   int64
	Payload int64

	// Migration payload: the tenant, its warm-up plan (the chain
	// segments the destination cache lacks, empty when warm-up is
	// off), and its pending wake-up.
	tenant *tenant
	plan   []swap.ChainSegment
	wakeAt sim.Time
}

// Federation is one federated run's shared state. Everything here is
// touched only before the run, at window barriers, or after the run —
// never by window code — so the facility worlds share nothing.
type Federation struct {
	cfg        Config
	Facilities []*Facility
	// Pool is the shared global pool: the authoritative home of every
	// committed checkpoint chain, reachable from any facility.
	Pool *storage.RemoteBackend
	// links[src][dst] is the directed WAN mesh (nil on the diagonal).
	links [][]*xfer.WANLink
	win   *sim.Windows
	// tenants indexes the fleet by global id.
	tenants []*tenant

	// Migrations counts tenant handoffs decided by the balancer.
	Migrations int
}

// New builds the federation: facilities, WAN mesh, and the fleet
// placed by the global admission layer.
func New(cfg Config) *Federation {
	cfg = cfg.withDefaults()
	fed := &Federation{cfg: cfg, Pool: storage.NewRemoteBackend()}
	var worlds []*sim.Simulator
	for i := 0; i < cfg.Facilities; i++ {
		s := sim.New(int64(sim.Mix64(cfg.Seed, int64(i))))
		fac := &Facility{
			Idx: i, S: s,
			Sched:    sched.New(s, cfg.PoolPer, sched.IdleFirst),
			Bus:      notify.NewBus(s),
			Cache:    storage.NewDeltaCache(cfg.CacheBytes, nil),
			fed:      fed,
			sleepers: list.New(),
		}
		fac.Sched.MinResidency = 5 * sim.Second
		fed.Facilities = append(fed.Facilities, fac)
		worlds = append(worlds, s)
	}
	fed.links = make([][]*xfer.WANLink, cfg.Facilities)
	for i := range fed.links {
		fed.links[i] = make([]*xfer.WANLink, cfg.Facilities)
		for j := range fed.links[i] {
			if i == j {
				continue
			}
			fed.links[i][j] = xfer.NewWANLink(
				fmt.Sprintf("fac%d->fac%d", i, j), cfg.WANLatency, cfg.WANRate)
		}
	}
	fed.place()
	fed.win = &sim.Windows{
		Worlds:    worlds,
		Lookahead: cfg.Lookahead,
		Workers:   cfg.Workers,
		Exchange:  fed.exchange,
	}
	return fed
}

// place is the global admission layer: tenants arrive in id order and
// each is placed on the facility with the least live hardware demand
// (ties to the lowest index) — deterministic because sched.Demand is
// a pure function of the submission history. Initial chains are
// committed to the shared pool before the worlds start.
func (fed *Federation) place() {
	for id := 0; id < fed.cfg.Tenants; id++ {
		best := 0
		for i, fac := range fed.Facilities {
			if fac.Sched.Demand() < fed.Facilities[best].Sched.Demand() {
				best = i
			}
		}
		fac := fed.Facilities[best]
		t := fed.newTenant(id, fac)
		for _, seg := range t.chain {
			fed.Pool.Put(seg.Addr, seg.Bytes)
		}
		t.committed = len(t.chain)
		fed.tenants = append(fed.tenants, t)
		if err := fac.Sched.Submit(t.job); err != nil {
			panic("federation: submit " + t.name + ": " + err.Error())
		}
	}
}

func (fed *Federation) nFacilities() int { return len(fed.Facilities) }

// Run drives the federation to the horizon (or until the fleet
// drains) and reports the outcome.
func (fed *Federation) Run() *Result {
	chunk := 16 * fed.cfg.Lookahead
	for now := sim.Time(0); now < fed.cfg.Horizon && !fed.drained(); {
		next := now + chunk
		if next > fed.cfg.Horizon {
			next = fed.cfg.Horizon
		}
		fed.win.Run(next)
		now = next
	}
	return fed.result()
}

// drained reports whether every tenant finished. Checked only between
// window chunks, so the stopping point is identical at every worker
// count.
func (fed *Federation) drained() bool {
	done := 0
	for _, fac := range fed.Facilities {
		done += fac.completed
	}
	return done == len(fed.tenants)
}

// exchange is the single-threaded window barrier: all worlds stand
// exactly at end. Pending chain commits land in the shared pool, the
// balancer decides migrations, and every collected message is routed
// in canonical (when, facility, seq) order through its WAN link into
// the destination world.
func (fed *Federation) exchange(end sim.Time) {
	fed.commitChains()
	if fed.cfg.Migration {
		fed.rebalance()
	}
	var msgs []Message
	for _, fac := range fed.Facilities {
		msgs = append(msgs, fac.outbox...)
		fac.outbox = fac.outbox[:0]
	}
	sort.Slice(msgs, func(a, b int) bool {
		if msgs[a].When != msgs[b].When {
			return msgs[a].When < msgs[b].When
		}
		if msgs[a].Src != msgs[b].Src {
			return msgs[a].Src < msgs[b].Src
		}
		return msgs[a].Seq < msgs[b].Seq
	})
	for i := range msgs {
		fed.route(msgs[i], end)
	}
}

// commitChains flushes delta segments dirtied during the window to
// the shared pool, facility by facility in index order.
func (fed *Federation) commitChains() {
	for _, fac := range fed.Facilities {
		for _, t := range fac.pendingCommit {
			for _, seg := range t.chain[t.committed:] {
				fed.Pool.Put(seg.Addr, seg.Bytes)
			}
			t.committed = len(t.chain)
			t.pending = false
		}
		fac.pendingCommit = fac.pendingCommit[:0]
	}
}

// rebalance is the migration controller: when the live-demand gap
// between the most- and least-loaded facilities reaches the trigger,
// the longest-sleeping parked tenant of the loaded facility is handed
// off, its chain (optionally) shipped ahead as destination cache
// warm-up. One migration per barrier keeps the controller gentle.
func (fed *Federation) rebalance() {
	if fed.nFacilities() < 2 {
		return
	}
	src, dst := fed.Facilities[0], fed.Facilities[0]
	for _, fac := range fed.Facilities[1:] {
		if fac.Sched.Demand() > src.Sched.Demand() {
			src = fac
		}
		if fac.Sched.Demand() < dst.Sched.Demand() {
			dst = fac
		}
	}
	if src.Sched.Demand()-dst.Sched.Demand() < fed.cfg.MigrationGap {
		return
	}
	t := src.popSleeper()
	if t == nil {
		return
	}
	t.unbind()
	if err := src.Sched.Finish(t.name); err != nil {
		panic("federation: migrate finish " + t.name + ": " + err.Error())
	}
	src.Departures++
	fed.Migrations++
	m := Message{
		Kind: msgMigrate, Dst: dst.Idx,
		Bytes:  migrationControlBytes,
		tenant: t,
		wakeAt: t.wakeAt,
	}
	if fed.cfg.WarmUp {
		m.plan = swap.PlanWarmUp(t.chain[:t.committed], dst.Cache)
		m.Bytes += swap.ChainBytes(m.plan)
	}
	src.send(m)
}

// migrationControlBytes is the metadata a migration always ships
// (manifest, placement record) even when warm-up is off.
const migrationControlBytes = 64 << 10

// route prices one message through its WAN link and schedules its
// delivery in the destination world. The latency floor guarantees
// the arrival is at or after the barrier — every world's clock — so
// the injection can never violate causality.
func (fed *Federation) route(m Message, end sim.Time) {
	arrival := fed.links[m.Src][m.Dst].Send(m.When, m.Bytes)
	if arrival < end {
		panic(fmt.Sprintf("federation: WAN arrival %v inside the window ending %v", arrival, end))
	}
	dst := fed.Facilities[m.Dst]
	dst.S.DoAt(arrival, "fed.wan", func() { dst.deliver(m, arrival) })
}

// deliver runs in the destination world at the message's arrival.
func (fac *Facility) deliver(m Message, arrival sim.Time) {
	switch m.Kind {
	case msgSync:
		fac.WANDeliveries++
		fac.wanSum += m.Payload
	case msgMigrate:
		t := m.tenant
		fac.Arrivals++
		t.migrations++
		if len(m.plan) > 0 {
			swap.WarmUp(m.plan, fac.Cache)
		}
		t.bind(fac)
		t.sleeping = false
		wake := m.wakeAt
		if wake < arrival {
			wake = arrival
		}
		fac.S.DoAt(wake, "fed.rejoin", func() {
			if err := fac.Sched.Submit(t.job); err != nil {
				panic("federation: rejoin " + t.name + ": " + err.Error())
			}
		})
	}
}

// Result is one federated run's sim-domain outcome plus its digest.
// Every field is bit-deterministic under (config, seed) — there are
// no wall-clock fields here; timing lives in the evalrun table.
type Result struct {
	Facilities int     `json:"facilities"`
	Tenants    int     `json:"tenants"`
	Workers    int     `json:"workers"`
	SimS       float64 `json:"sim_s"`
	Events     uint64  `json:"events"`
	Ticks      int64   `json:"ticks"`
	Windows    int64   `json:"windows"`
	Completed  int     `json:"completed"`
	Migrations int     `json:"migrations"`
	WANMsgs    int64   `json:"wan_msgs"`
	WANMB      float64 `json:"wan_mb"`
	WarmedMB   float64 `json:"warmed_mb"`
	LocalMB    float64 `json:"local_mb"`
	RemoteMB   float64 `json:"remote_mb"`
	PoolMB     float64 `json:"pool_mb"`
	Digest     string  `json:"digest"`
}

func (fed *Federation) result() *Result {
	r := &Result{
		Facilities: fed.cfg.Facilities,
		Tenants:    fed.cfg.Tenants,
		Workers:    fed.cfg.Workers,
		Windows:    fed.win.Barriers,
		Migrations: fed.Migrations,
		PoolMB:     float64(fed.Pool.StoredBytes()) / (1 << 20),
		Digest:     fed.Digest(),
	}
	for _, fac := range fed.Facilities {
		if s := fac.S.Now().Seconds(); s > r.SimS {
			r.SimS = s
		}
		r.Events += fac.S.Fired()
		r.Ticks += fac.ticks
		r.Completed += fac.completed
		cs := fac.Cache.Stats()
		r.WarmedMB += float64(cs.WarmedBytes) / (1 << 20)
		r.LocalMB += float64(fac.LocalBytes) / (1 << 20)
		r.RemoteMB += float64(fac.RemoteBytes) / (1 << 20)
	}
	for _, row := range fed.links {
		for _, l := range row {
			if l == nil {
				continue
			}
			r.WANMsgs += l.Msgs
			r.WANMB += float64(l.Bytes) / (1 << 20)
		}
	}
	return r
}

// Digest folds the federation's sim-domain outcome into a hex FNV-64a:
// per-facility clocks, ledgers and cache stats in index order, then
// per-tenant state in global id order, then the WAN mesh and pool.
// Same (config, seed) must reproduce it byte for byte at any worker
// count, on any machine.
func (fed *Federation) Digest() string {
	h := fnv.New64a()
	w := func(vs ...int64) {
		var b [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(b[:], uint64(v))
			h.Write(b[:])
		}
	}
	for _, fac := range fed.Facilities {
		d := fac.Sched
		w(int64(fac.S.Now()), int64(fac.S.Fired()), fac.ticks, int64(fac.completed),
			fac.WANDeliveries, fac.wanSum, fac.LocalBytes, fac.RemoteBytes,
			int64(fac.Arrivals), int64(fac.Departures),
			int64(d.Admissions), int64(d.Preemptions), d.PreemptedBytes,
			int64(d.MeanQueueWait()), int64(fac.Bus.Published), int64(fac.Bus.Delivered))
		cs := fac.Cache.Stats()
		w(cs.Hits, cs.Misses, cs.HitBytes, cs.MissBytes, cs.Evictions,
			cs.Rejected, cs.Warmed, cs.WarmedBytes, fac.Cache.Used())
	}
	for _, t := range fed.tenants {
		state := int64(0)
		if t.done {
			state = 1
		}
		w(int64(t.fac.Idx), state, int64(t.ticks), int64(t.migrations),
			t.deliveries, int64(t.committed))
	}
	for _, row := range fed.links {
		for _, l := range row {
			if l == nil {
				continue
			}
			w(l.Msgs, l.Bytes, int64(l.Queued))
		}
	}
	w(fed.Pool.StoredBytes(), int64(fed.Pool.SegmentCount()), int64(fed.Migrations))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Run is the package entry point: build and run one federated fleet.
func Run(cfg Config) *Result {
	return New(cfg).Run()
}
