package sim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"testing"
)

// pingWorld is a minimal federated world for the window tests: it
// ticks locally every tick interval and emits a cross-world message
// to its neighbour every third tick. Messages collected during a
// window are exchanged at the barrier with latency >= lookahead.
type pingWorld struct {
	s     *Simulator
	idx   int
	ticks int64
	// recv logs (arrival, payload) pairs in delivery order.
	recv []int64
	out  []pingMsg
}

type pingMsg struct {
	when    Time
	seq     int64
	dst     int
	payload int64
}

func (p *pingWorld) tick(interval Time) {
	p.ticks++
	if p.ticks%3 == 0 {
		p.out = append(p.out, pingMsg{
			when: p.s.Now(), seq: p.ticks, dst: 1 - p.idx,
			payload: int64(p.idx)*1000 + p.ticks,
		})
	}
	p.s.DoAfter(interval, "ping.tick", func() { p.tick(interval) })
}

func (p *pingWorld) digest() uint64 {
	h := fnv.New64a()
	w := func(vs ...int64) {
		var b [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(b[:], uint64(v))
			h.Write(b[:])
		}
	}
	w(int64(p.s.Now()), int64(p.s.Fired()), p.ticks, int64(len(p.recv)))
	for _, v := range p.recv {
		w(v)
	}
	return h.Sum64()
}

// runPingFederation runs two coupled ping worlds for a horizon at the
// given worker width and returns the combined digest.
func runPingFederation(t *testing.T, workers int) (uint64, int64) {
	t.Helper()
	const lookahead = 50 * Millisecond
	worlds := []*pingWorld{{idx: 0}, {idx: 1}}
	var sims []*Simulator
	for i, p := range worlds {
		p.s = New(int64(i + 1))
		iv := 7*Millisecond + Time(i)*3*Millisecond
		p.s.DoAfter(iv, "ping.tick", func() { p.tick(iv) })
		sims = append(sims, p.s)
	}
	win := &Windows{
		Worlds:    sims,
		Lookahead: lookahead,
		Workers:   workers,
		Exchange: func(end Time) {
			// Canonical (when, world, seq) order before injection.
			var all []pingMsg
			var srcs []int
			for i, p := range worlds {
				for _, m := range p.out {
					all = append(all, m)
					srcs = append(srcs, i)
				}
				p.out = p.out[:0]
			}
			idx := make([]int, len(all))
			for i := range idx {
				idx[i] = i
			}
			sort.SliceStable(idx, func(a, b int) bool {
				ma, mb := all[idx[a]], all[idx[b]]
				if ma.when != mb.when {
					return ma.when < mb.when
				}
				if srcs[idx[a]] != srcs[idx[b]] {
					return srcs[idx[a]] < srcs[idx[b]]
				}
				return ma.seq < mb.seq
			})
			for _, i := range idx {
				m := all[i]
				dst := worlds[m.dst]
				arrival := m.when + lookahead
				if arrival < end {
					t.Fatalf("message arrival %v before barrier %v", arrival, end)
				}
				payload := m.payload
				dst.s.DoAt(arrival, "ping.recv", func() {
					dst.recv = append(dst.recv, payload)
				})
			}
		},
	}
	win.Run(2 * Second)

	h := fnv.New64a()
	var b [8]byte
	for _, p := range worlds {
		binary.LittleEndian.PutUint64(b[:], p.digest())
		h.Write(b[:])
	}
	return h.Sum64(), win.Barriers
}

// TestWindowsParallelIdentical pins the core federation claim: the
// worker width never changes the simulation, only the wall-clock.
func TestWindowsParallelIdentical(t *testing.T) {
	serial, barriers := runPingFederation(t, 1)
	if barriers != 40 { // 2 s / 50 ms
		t.Fatalf("barriers = %d, want 40", barriers)
	}
	for _, workers := range []int{2, 4, 8, 0} {
		got, _ := runPingFederation(t, workers)
		if got != serial {
			t.Fatalf("workers=%d digest %016x != serial %016x", workers, got, serial)
		}
	}
}

// TestWindowsDeliversCrossWorld checks the coupling is real: both
// worlds receive traffic, and arrivals respect the latency floor.
func TestWindowsDeliversCrossWorld(t *testing.T) {
	const lookahead = 50 * Millisecond
	worlds := []*pingWorld{{idx: 0}, {idx: 1}}
	var sims []*Simulator
	for i, p := range worlds {
		p.s = New(int64(i + 1))
		iv := 7 * Millisecond
		p.s.DoAfter(iv, "ping.tick", func() { p.tick(iv) })
		sims = append(sims, p.s)
	}
	win := &Windows{Worlds: sims, Lookahead: lookahead, Workers: 1,
		Exchange: func(end Time) {
			for _, p := range worlds {
				for _, m := range p.out {
					dst := worlds[m.dst]
					payload := m.payload
					dst.s.DoAt(m.when+lookahead, "ping.recv", func() {
						dst.recv = append(dst.recv, payload)
					})
				}
				p.out = p.out[:0]
			}
		}}
	win.Run(Second)
	for i, p := range worlds {
		if len(p.recv) == 0 {
			t.Fatalf("world %d received no cross-world messages", i)
		}
		if p.s.Now() != Second {
			t.Fatalf("world %d clock %v, want %v", i, p.s.Now(), Second)
		}
	}
}

// TestWindowsLookaheadValidation pins the misuse panic.
func TestWindowsLookaheadValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run with zero lookahead did not panic")
		}
	}()
	w := &Windows{Worlds: []*Simulator{New(1)}}
	w.Run(Second)
}

// TestWindowsClampsFinalWindow checks the last partial window stops
// exactly at the requested horizon.
func TestWindowsClampsFinalWindow(t *testing.T) {
	s := New(1)
	w := &Windows{Worlds: []*Simulator{s}, Lookahead: 300 * Millisecond, Workers: 1}
	w.Run(Second)
	if s.Now() != Second {
		t.Fatalf("clock %v, want %v", s.Now(), Second)
	}
	if w.Barriers != 4 { // 300+300+300+100
		t.Fatalf("barriers = %d, want 4", w.Barriers)
	}
}

func ExampleWindows() {
	a, b := New(1), New(2)
	a.DoAfter(10*Millisecond, "a", func() {})
	b.DoAfter(20*Millisecond, "b", func() {})
	w := &Windows{Worlds: []*Simulator{a, b}, Lookahead: 25 * Millisecond}
	w.Run(100 * Millisecond)
	fmt.Println(a.Now() == b.Now(), a.Fired(), b.Fired())
	// Output: true 1 1
}
