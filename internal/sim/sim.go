// Package sim implements the deterministic discrete-event simulation
// kernel that underlies the whole testbed model.
//
// Everything in this repository — nodes, guest kernels, networks, disks,
// the checkpoint machinery — advances by scheduling events on a single
// Simulator. Time is virtual, measured in integer nanoseconds, and the
// event order is fully deterministic: ties on the timestamp are broken by
// insertion sequence, and all randomness flows from one seeded source.
// Running the same experiment twice therefore yields bit-identical
// results, which is what makes the paper's transparency claims testable.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of
// the simulation. It is the "real" (physical-testbed) time domain; guest
// virtual time is layered on top by package vclock.
type Time int64

// Common durations, mirroring time.Duration semantics but kept as plain
// Time values so arithmetic needs no conversions.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// Never is a sentinel timestamp later than any reachable simulation time.
const Never Time = 1<<63 - 1

// Duration converts t to a time.Duration for formatting.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t in floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t in floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t in floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. Events are single-shot; rescheduling
// creates a new Event. A cancelled event never fires.
type Event struct {
	when      Time
	seq       uint64
	fn        func()
	index     int // heap index, -1 when not queued
	cancelled bool
	// pooled marks an event scheduled through DoAt/DoAfter: no handle
	// escaped, so the simulator may recycle it through the free list the
	// moment it is popped.
	pooled bool
	name   string
}

// When reports the time the event is scheduled to fire.
func (e *Event) When() Time { return e.when }

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e.cancelled }

// Name reports the debug label given at scheduling time.
func (e *Event) Name() string { return e.name }

// Simulator is the event loop. It is not safe for concurrent use; all
// model code runs on the simulator's single logical thread, which is
// faithful to the synchronous nature of the systems being modelled.
type Simulator struct {
	now     Time
	queue   eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool
	// fired counts delivered events, for diagnostics and test assertions.
	fired uint64
	// free is the recycled-Event pool feeding DoAt/DoAfter. Only events
	// whose *Event handle never escaped (pooled) land here, so a stale
	// handle can never cancel a recycled event. Bounded by the peak
	// number of simultaneously queued fire-and-forget events.
	free []*Event
}

// New creates a Simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Rand exposes the simulation's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Fired reports the number of events delivered so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending reports the number of events currently queued.
func (s *Simulator) Pending() int { return s.queue.len() }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: the models must never violate causality.
func (s *Simulator) At(t Time, name string, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v before now %v", name, t, s.now))
	}
	s.seq++
	e := &Event{when: t, seq: s.seq, fn: fn, name: name}
	s.queue.push(e)
	return e
}

// After schedules fn to run d nanoseconds from now. Negative d is clamped
// to zero so jittered delays can never go backwards.
func (s *Simulator) After(d Time, name string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, name, fn)
}

// DoAt schedules fn at absolute time t without returning a handle. The
// event comes from the simulator's free list and is recycled the moment
// it fires, so steady-state fire-and-forget scheduling — the vast
// majority of model events: activity ticks, transfer completions,
// protocol timeouts that are never cancelled — allocates nothing.
// Because no handle escapes, no caller can cancel a recycled event
// through a stale pointer, which is the hazard that keeps At's events
// out of the pool. Scheduling in the past panics, like At.
func (s *Simulator) DoAt(t Time, name string, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v before now %v", name, t, s.now))
	}
	s.seq++
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &Event{}
	}
	*e = Event{when: t, seq: s.seq, fn: fn, name: name, pooled: true}
	s.queue.push(e)
}

// DoAfter schedules fn to run d from now, handle-free and pooled like
// DoAt. Negative d is clamped to zero, mirroring After.
func (s *Simulator) DoAfter(d Time, name string, fn func()) {
	if d < 0 {
		d = 0
	}
	s.DoAt(s.now+d, name, fn)
}

// release returns a popped pooled event to the free list, dropping its
// closure so the pool never pins model objects.
func (s *Simulator) release(e *Event) {
	e.fn = nil
	e.name = ""
	s.free = append(s.free, e)
}

// Cancel removes the event from the queue if it has not fired.
// It is safe to cancel an already-fired or already-cancelled event.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.cancelled || e.index < 0 {
		if e != nil {
			e.cancelled = true
		}
		return
	}
	e.cancelled = true
	s.queue.remove(e.index)
}

// Reschedule moves a pending event to a new absolute time, preserving its
// callback. If the event already fired or was cancelled it panics, since
// callers must only reschedule live events.
func (s *Simulator) Reschedule(e *Event, t Time) {
	if e.cancelled || e.index < 0 {
		panic("sim: reschedule of dead event " + e.name)
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: reschedule of %q to %v before now %v", e.name, t, s.now))
	}
	e.when = t
	s.seq++
	e.seq = s.seq
	s.queue.fix(e.index)
}

// Timer is a reusable one-shot alarm: one Event allocation serves the
// timer's whole lifetime, however many times it is re-armed. Periodic
// and repeatedly re-armed callers (scheduler wake-ups, workload tick
// loops) otherwise allocate a fresh Event per arm — at 10k-tenant
// fleet scale that is millions of allocations of pure churn. A Timer
// is single-owner: only code holding the Timer can cancel it, which
// sidesteps the stale-pointer hazard a general Event free-list would
// have (a recycled Event cancelled through an old handle). DoAt/DoAfter
// close the remaining gap from the other side: events whose handle
// never escapes are recycled through the simulator's free list.
type Timer struct {
	s *Simulator
	e Event
}

// NewTimer creates an unarmed timer that runs fn when it fires. The
// callback is fixed for the timer's lifetime; arm it with Schedule or
// Reset.
func (s *Simulator) NewTimer(name string, fn func()) *Timer {
	t := &Timer{}
	s.InitTimer(t, name, fn)
	return t
}

// InitTimer initializes t in place as an unarmed timer — NewTimer
// without the allocation, for callers that embed a Timer by value
// inside a larger hot-path object (e.g. the temporal firewall's
// per-activity handles) so handle and event are one allocation.
func (s *Simulator) InitTimer(t *Timer, name string, fn func()) {
	t.s = s
	t.e = Event{fn: fn, name: name, index: -1}
}

// Pending reports whether the timer is armed and has not yet fired.
func (t *Timer) Pending() bool { return t.e.index >= 0 }

// When reports the pending fire time (meaningless unless Pending).
func (t *Timer) When() Time { return t.e.when }

// Schedule arms the timer to fire at absolute time at, rescheduling in
// place if it is already pending. Like At, arming in the past panics.
func (t *Timer) Schedule(at Time) {
	e := &t.e
	if e.index >= 0 {
		t.s.Reschedule(e, at)
		return
	}
	if at < t.s.now {
		panic(fmt.Sprintf("sim: timer %q scheduled at %v before now %v", e.name, at, t.s.now))
	}
	e.cancelled = false
	t.s.seq++
	e.seq = t.s.seq
	e.when = at
	t.s.queue.push(e)
}

// Reset arms the timer to fire d from now (negative d is clamped to
// zero, mirroring After).
func (t *Timer) Reset(d Time) {
	if d < 0 {
		d = 0
	}
	t.Schedule(t.s.now + d)
}

// Stop disarms a pending timer; it is a no-op if the timer already
// fired or was never armed. The timer can be re-armed afterwards.
func (t *Timer) Stop() {
	if t.e.index >= 0 {
		t.s.Cancel(&t.e)
	}
}

// Stop makes Run return after the current event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Step delivers the single next event, if any, and reports whether one
// was delivered.
func (s *Simulator) Step() bool {
	for s.queue.len() > 0 {
		e := s.queue.pop()
		if e.cancelled {
			if e.pooled {
				s.release(e)
			}
			continue
		}
		s.now = e.when
		s.fired++
		fn := e.fn
		if e.pooled {
			// Recycle before running fn: the callback may immediately
			// DoAt a follow-up, which then reuses this very Event.
			s.release(e)
		}
		fn()
		return true
	}
	return false
}

// Run delivers events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil delivers events with timestamps <= t, then sets the clock to t.
// Events scheduled exactly at t are delivered.
func (s *Simulator) RunUntil(t Time) {
	s.stopped = false
	for !s.stopped && s.queue.len() > 0 && s.queue.peek().when <= t {
		if !s.Step() {
			break
		}
	}
	if !s.stopped && s.now < t {
		s.now = t
	}
}

// RunFor advances the simulation by d.
func (s *Simulator) RunFor(d Time) { s.RunUntil(s.now + d) }

// Jitter returns a uniformly distributed duration in [0, max).
func (s *Simulator) Jitter(max Time) Time {
	if max <= 0 {
		return 0
	}
	return Time(s.rng.Int63n(int64(max)))
}

// Normal returns a normally distributed duration with the given mean and
// standard deviation, truncated at zero.
func (s *Simulator) Normal(mean, stddev Time) Time {
	v := float64(mean) + s.rng.NormFloat64()*float64(stddev)
	if v < 0 {
		return 0
	}
	return Time(v)
}

// Uniform returns a uniformly distributed duration in [lo, hi).
func (s *Simulator) Uniform(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + Time(s.rng.Int63n(int64(hi-lo)))
}

// Mix64 folds the given values through a SplitMix64 finalizer chain and
// returns the mixed word. It is the deterministic seed-derivation
// primitive for anything that must vary arithmetically with a seed and
// an index without consuming any RNG stream: workload parameter draws,
// generated-scenario axes, per-app vote schedules. Same inputs, same
// output, on any platform.
func Mix64(vs ...int64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vs {
		h ^= uint64(v)
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}
