package storage

import (
	"testing"

	"emucheck/internal/sim"
)

func TestReadSpansMultipleLevels(t *testing.T) {
	s, v := newVol(1, Optimized)
	v.Age()
	// Block 0 in cur, block 1 in agg, block 2 only in golden.
	v.Write(BlockSize, BlockSize, nil) // will be merged to agg
	s.Run()
	v.Merge(true, nil)
	v.Write(0, BlockSize, nil) // stays in cur
	s.Run()
	v.ReadsCur, v.ReadsAgg, v.ReadsGolden = 0, 0, 0
	v.Read(0, 3*BlockSize, nil)
	s.Run()
	if v.ReadsCur != 1 || v.ReadsAgg != 1 || v.ReadsGolden != 1 {
		t.Fatalf("level hits: cur=%d agg=%d golden=%d", v.ReadsCur, v.ReadsAgg, v.ReadsGolden)
	}
}

func TestSequentialCurReadsCoalesce(t *testing.T) {
	s, v := newVol(1, Optimized)
	v.Age()
	// Sequential writes produce a sequential log; a spanning read should
	// be few disk ops, not one per block.
	for i := int64(0); i < 16; i++ {
		v.Write(i*BlockSize, BlockSize, nil)
	}
	s.Run()
	pre := v.Disk.ReadOps
	v.Read(0, 16*BlockSize, nil)
	s.Run()
	if ops := v.Disk.ReadOps - pre; ops != 1 {
		t.Fatalf("spanning read cost %d disk ops, want 1 (coalesced)", ops)
	}
}

func TestOverwriteSupersedesInLog(t *testing.T) {
	s, v := newVol(1, Optimized)
	v.Write(0, BlockSize, nil)
	v.Write(0, BlockSize, nil)
	v.Write(0, BlockSize, nil)
	s.Run()
	// The log holds three slots but the index points at the newest.
	if v.Cur.Slots() != 3 {
		t.Fatalf("log slots = %d", v.Cur.Slots())
	}
	if got := v.Cur.lookup(0); got != CurBase+2*BlockSize {
		t.Fatalf("lookup = %d, want newest slot", got)
	}
	// Merge compacts the superseded slots away.
	if got := v.Merge(true, nil); got != BlockSize {
		t.Fatalf("merged = %d", got)
	}
}

func TestRepeatedSwapCycleMergesAccumulate(t *testing.T) {
	s, v := newVol(1, Optimized)
	v.Age()
	for cycle := int64(0); cycle < 3; cycle++ {
		v.Write(cycle*8*BlockSize, 4*BlockSize, nil)
		s.Run()
		v.Merge(true, nil)
	}
	if got := v.Agg.Bytes(); got != 12*BlockSize {
		t.Fatalf("aggregated = %d blocks worth", got/BlockSize)
	}
	if v.Cur.Slots() != 0 {
		t.Fatal("cur not empty after merges")
	}
}

func TestModeStrings(t *testing.T) {
	if Optimized.String() != "branch" || OriginalLVM.String() != "branch-orig" || Raw.String() != "base" {
		t.Fatal("mode strings")
	}
	_, v := newVol(1, Optimized)
	if v.String() == "" {
		t.Fatal("volume string")
	}
}

func TestDeltaLiveBytesNilPredicate(t *testing.T) {
	d := NewDelta(CurBase)
	d.append(1)
	d.append(2)
	if d.LiveBytes(nil) != 2*BlockSize {
		t.Fatal("nil predicate should count everything")
	}
}

func TestRawModeAddressesGoldenDirectly(t *testing.T) {
	s, v := newVol(1, Raw)
	var lba int64 = -1
	// Peek at where a raw write lands by submitting and inspecting the
	// head position after completion.
	v.Write(12345, 100, func() { lba = 0 })
	s.Run()
	if lba != 0 {
		t.Fatal("write incomplete")
	}
	if v.Disk.WriteBytes != 100 {
		t.Fatalf("wrote %d", v.Disk.WriteBytes)
	}
}

// TestLocalityDegradesWithoutReorder quantifies §5.3's rationale for
// the offline reorder: after several unordered merges, sequential read
// seeks grow with history.
func TestLocalityDegradesWithoutReorder(t *testing.T) {
	seeks := func(reorder bool, cycles int) int64 {
		s, v := newVol(2, Optimized)
		v.Age()
		rnd := sim.New(9).Rand()
		for c := 0; c < cycles; c++ {
			// Random scattered writes each "session".
			for i := 0; i < 32; i++ {
				v.Write(int64(rnd.Intn(256))*BlockSize, BlockSize, nil)
			}
			s.Run()
			v.Merge(reorder, nil)
		}
		pre := v.Disk.SeekOps
		v.Read(0, 256*BlockSize, nil)
		s.Run()
		return v.Disk.SeekOps - pre
	}
	ordered := seeks(true, 4)
	unordered := seeks(false, 4)
	if ordered >= unordered {
		t.Fatalf("reorder not helping: %d vs %d seeks", ordered, unordered)
	}
}
