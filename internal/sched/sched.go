// Package sched implements a preemptive swap scheduler for the shared
// testbed — the facility-level use case stateful swapping exists for
// (paper §2, §5): Emulab is oversubscribed, most experiments are idle
// most of the time, and transparently swapping idle experiments out
// lets many experiments time-share one hardware pool.
//
// The scheduler admits experiments against a finite pool. When the
// queue head does not fit, it selects running victims by policy,
// statefully swaps them out (releasing their hardware), and admits the
// queued experiment. Preempted experiments re-join the queue and are
// resumed — with the whole interruption concealed from them by the
// checkpoint machinery — once capacity frees up.
//
// The scheduler is mechanism-agnostic: admission, parking, and resume
// are callbacks supplied by the hosting layer (the emucheck Cluster),
// which charge realistic swap costs through the shared control LAN.
//
// The hot path is built to survive oversubscription at 1k–10k tenants
// (see docs/scale.md): job lookup is a name index, the admission queue
// is an intrusive list with O(1) removal, preemption candidates live
// in a running-set index selected through a deterministic min-heap,
// and one kick admits a whole head-run in a single queue walk.
// Everything stays deterministic: decisions happen at well-defined
// simulation instants, ordering flows from strict total orders over
// (policy cost, admission time, submit index), and no map is iterated.
package sched

import (
	"fmt"
	"time"

	"emucheck/internal/sim"
)

// Policy selects the preemption victim.
type Policy int

// Victim-selection policies.
const (
	// FIFO preempts the earliest-admitted experiment — round-robin
	// time-sharing under contention.
	FIFO Policy = iota
	// IdleFirst preempts the experiment idle the longest, the paper's
	// motivating case: idle experiments should not hold hardware.
	IdleFirst
	// Priority preempts the lowest-priority experiment, and only for a
	// strictly higher-priority arrival.
	Priority
)

// String names the policy as scenario files spell it.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case IdleFirst:
		return "idle-first"
	case Priority:
		return "priority"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy maps a policy name to its value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "fifo", "":
		return FIFO, nil
	case "idle-first", "idlefirst":
		return IdleFirst, nil
	case "priority":
		return Priority, nil
	}
	return 0, fmt.Errorf("sched: unknown policy %q", s)
}

// State is a job's lifecycle position.
type State int

// Job states.
const (
	Queued State = iota
	Starting
	Running
	Parking
	Parked
	Resuming
	Done
	// Crashed jobs fail-stopped (Fail): they hold no hardware and sit
	// out of the queue until Recover re-queues them.
	Crashed
)

// String names the state as reports and assertions spell it.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Starting:
		return "starting"
	case Running:
		return "running"
	case Parking:
		return "parking"
	case Parked:
		return "parked"
	case Resuming:
		return "resuming"
	case Done:
		return "done"
	case Crashed:
		return "crashed"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Hooks are the mechanism callbacks the hosting layer supplies. Each is
// asynchronous: it begins the operation and must call done when the
// operation completes (possibly much later in simulated time), passing
// nil on success or the failure that stopped it — hook failures are
// scheduler events (a park that aborts returns the job to service; a
// start that cannot instantiate retires the job), never panics.
type Hooks struct {
	// Start instantiates the experiment on freshly allocated hardware
	// (first admission: testbed swap-in, boot, workload setup).
	Start func(done func(err error))
	// Park statefully swaps the experiment out and releases its
	// hardware; done fires once the pool has the nodes back — or with
	// the error that aborted the swap-out, in which case the job keeps
	// its hardware and returns to Running.
	Park func(done func(err error))
	// Resume re-acquires hardware and statefully swaps the experiment
	// back in; done fires when the experiment is running again.
	Resume func(done func(err error))
	// ParkCost, if set, estimates the bytes a stateful park would move
	// right now — proportional to state dirtied since the last resident
	// checkpoint under incremental swapping. The scheduler uses it to
	// break victim-selection ties toward the cheapest preemption and to
	// account the transfer cost of its decisions (PreemptedBytes).
	// It must be pure: evaluating it may happen a different number of
	// times per decision depending on policy.
	ParkCost func() int64
}

// Job is one experiment under scheduler control.
type Job struct {
	Name string
	// Need is the job's hardware demand (nodes + delay nodes).
	Need int
	// Priority orders jobs under the Priority policy; larger is more
	// important.
	Priority int
	// Preemptible marks jobs whose state survives a stateful swap-out
	// (every node swappable). Non-preemptible jobs hold their hardware
	// until they finish.
	Preemptible bool
	Hooks       Hooks

	state        State
	gang         int // nonzero: co-scheduled batch id (first admission only)
	submitted    sim.Time
	admittedAt   sim.Time // most recent admission decision
	runningSince sim.Time // most recent entry into service
	lastActive   sim.Time
	queuedSince  sim.Time
	queuedWait   sim.Time
	preemptions  int
	admissions   int
	lastParkCost int64
	// autoResume re-queues the job after a park. Preemptions set it;
	// voluntary parks clear it until Unpark.
	autoResume bool

	// idx is the job's stable submit index — the final victim-selection
	// tie-break, standing in for the submit-order traversal the legacy
	// linear scan got its stability from.
	idx int
	// qprev/qnext/inQueue are the intrusive admission-queue links.
	qprev, qnext *Job
	inQueue      bool
	// runIdx is the job's slot in the preemption-candidate index, -1
	// when not running (or not preemptible).
	runIdx int

	sched *Scheduler // set at Submit
}

// State reports the job's lifecycle position.
func (j *Job) State() State { return j.state }

// QueueWait reports total time spent waiting for admission, including
// the wait still in progress if the job is queued right now — a
// starving job must not report zero.
func (j *Job) QueueWait() sim.Time {
	w := j.queuedWait
	if j.state == Queued && j.sched != nil {
		w += j.sched.S.Now() - j.queuedSince
	}
	return w
}

// Preemptions reports how often the job was involuntarily parked.
func (j *Job) Preemptions() int { return j.preemptions }

// RunningSince reports the job's most recent entry into service — the
// floor for lost-work accounting: nothing computed before it can be
// lost to a crash, because the preceding park committed everything.
func (j *Job) RunningSince() sim.Time { return j.runningSince }

// LastParkCost reports the estimated bytes moved by the job's most
// recent park (0 if never parked or no ParkCost hook).
func (j *Job) LastParkCost() int64 { return j.lastParkCost }

// parkCost evaluates the job's ParkCost hook (0 without one).
func (j *Job) parkCost() int64 {
	if j.Hooks.ParkCost == nil {
		return 0
	}
	return j.Hooks.ParkCost()
}

// Admissions reports how often the job was (re-)admitted.
func (j *Job) Admissions() int { return j.admissions }

// IdleFor reports time since the job last reported activity.
func (j *Job) IdleFor(now sim.Time) sim.Time { return now - j.lastActive }

// Scheduler admits experiments against the pool and preempts by policy.
type Scheduler struct {
	S        *sim.Simulator
	Capacity int
	Policy   Policy

	// MinResidency protects a freshly admitted job from immediate
	// re-preemption; without it two oversubscribed jobs would thrash.
	MinResidency sim.Time

	free          int
	cordoned      int             // nodes withdrawn from admission (suspect hardware)
	demand        int             // summed Need of live (unretired) jobs
	jobs          []*Job          // submit order
	byName        map[string]*Job // latest submission per name; lookup only, never iterated
	queue         jobQueue        // admission order (intrusive FIFO)
	candidates    []*Job          // running preemptible jobs (runIdx-indexed)
	doneJobs      int
	parksInFlight int
	nextGang      int

	// GangAdmissions counts gang batches admitted as a unit.
	GangAdmissions int

	// Failures counts jobs that fail-stopped (Fail); Recoveries counts
	// crashed jobs re-queued for restoration.
	Failures   int
	Recoveries int

	// Admissions and Preemptions count scheduler decisions; Drains
	// counts involuntary parks initiated through DrainFor (remediation
	// clearing room for a recovering tenant rather than the admission
	// path preempting for the queue head).
	Admissions  int
	Preemptions int
	Drains      int
	// PreemptedBytes sums the ParkCost estimates of every involuntary
	// park — the transfer bill of the scheduler's victim choices, which
	// incremental swapping makes proportional to dirtied state.
	PreemptedBytes int64

	// Instrument enables wall-clock accounting of decision work: with
	// it set, DecisionNanos accumulates the real time spent inside kick
	// (admission scanning, victim selection, preemption dispatch) and
	// Kicks counts invocations. Purely observational — it never feeds
	// back into scheduling, so determinism is unaffected.
	Instrument    bool
	DecisionNanos int64
	Kicks         uint64
	kickDepth     int

	t0       sim.Time
	utilAcc  float64 // node-nanoseconds of allocated hardware
	utilLast sim.Time
	wake     *sim.Timer
}

// New creates a scheduler over capacity pool nodes.
func New(s *sim.Simulator, capacity int, policy Policy) *Scheduler {
	return &Scheduler{
		S: s, Capacity: capacity, Policy: policy,
		MinResidency: 10 * sim.Second,
		free:         capacity,
		byName:       make(map[string]*Job),
		t0:           s.Now(), utilLast: s.Now(),
	}
}

// Free reports currently unallocated pool nodes.
func (d *Scheduler) Free() int { return d.free }

// CordonedNodes reports how many pool nodes are currently withdrawn
// from admission.
func (d *Scheduler) CordonedNodes() int { return d.cordoned }

// avail reports the nodes admission may actually hand out: free pool
// capacity minus the cordon line. Cordoned nodes are free (nothing runs
// on suspect hardware) but unschedulable, so oversubscription can push
// this below zero transiently — callers treat that as zero headroom.
func (d *Scheduler) avail() int {
	a := d.free - d.cordoned
	if a < 0 {
		return 0
	}
	return a
}

// Cordon withdraws n nodes from admission — suspect hardware leaving
// the schedulable pool after a failure, pending probation. Cordoned
// nodes still count as capacity (utilization is unchanged); they are
// simply never handed to the queue until Uncordon returns them.
func (d *Scheduler) Cordon(n int) error {
	if n <= 0 {
		return fmt.Errorf("sched: cordon of %d nodes", n)
	}
	if d.cordoned+n > d.Capacity {
		return fmt.Errorf("sched: cordon of %d nodes exceeds capacity (cordoned %d of %d)",
			n, d.cordoned, d.Capacity)
	}
	d.cordoned += n
	return nil
}

// Uncordon returns previously cordoned nodes to the schedulable pool
// and lets the queue use them.
func (d *Scheduler) Uncordon(n int) error {
	if n <= 0 || n > d.cordoned {
		return fmt.Errorf("sched: uncordon of %d nodes, %d cordoned", n, d.cordoned)
	}
	d.cordoned -= n
	d.kick()
	return nil
}

// Demand reports the summed hardware demand of every live (unretired)
// job — queued, running, parked or crashed. It is the federation's
// global-admission load signal: a pure function of the submission and
// retirement history, independent of transient scheduling state, so
// least-loaded placement across facilities stays deterministic.
func (d *Scheduler) Demand() int { return d.demand }

// Reserve charges n nodes allocated outside job control (experiments
// admitted directly, bypassing the queue), so the scheduler's capacity
// ledger matches the testbed's.
func (d *Scheduler) Reserve(n int) error {
	if n < 0 || n > d.avail() {
		return fmt.Errorf("sched: cannot reserve %d nodes, %d free", n, d.avail())
	}
	d.setFree(d.free - n)
	return nil
}

// Release returns nodes previously charged with Reserve and lets the
// queue use them.
func (d *Scheduler) Release(n int) {
	if n <= 0 {
		return
	}
	f := d.free + n
	if f > d.Capacity {
		f = d.Capacity
	}
	d.setFree(f)
	d.kick()
}

// Job returns a job by name (nil if unknown). A finished job's name
// may be reused; the most recent submission wins.
func (d *Scheduler) Job(name string) *Job { return d.byName[name] }

// Jobs returns every submitted job in submit order.
func (d *Scheduler) Jobs() []*Job { return d.jobs }

// QueueLen reports how many jobs are awaiting admission.
func (d *Scheduler) QueueLen() int { return d.queue.len() }

// Utilization reports the time-averaged fraction of the pool allocated
// since the scheduler was created.
func (d *Scheduler) Utilization() float64 {
	elapsed := d.S.Now() - d.t0
	if elapsed <= 0 || d.Capacity == 0 {
		return 0
	}
	acc := d.utilAcc + float64(d.Capacity-d.free)*float64(d.S.Now()-d.utilLast)
	return acc / (float64(d.Capacity) * float64(elapsed))
}

// MeanQueueWait averages accumulated admission waits across jobs.
func (d *Scheduler) MeanQueueWait() sim.Time {
	if len(d.jobs) == 0 {
		return 0
	}
	var sum sim.Time
	for _, j := range d.jobs {
		sum += j.QueueWait()
	}
	return sum / sim.Time(len(d.jobs))
}

// setFree adjusts the allocation level, integrating utilization.
func (d *Scheduler) setFree(f int) {
	now := d.S.Now()
	d.utilAcc += float64(d.Capacity-d.free) * float64(now-d.utilLast)
	d.utilLast = now
	d.free = f
}

// validate rejects jobs whose demand can never fit or whose name is
// already live.
func (d *Scheduler) validate(j *Job) error {
	if j.Need <= 0 {
		return fmt.Errorf("sched: job %q needs %d nodes", j.Name, j.Need)
	}
	if j.Need > d.Capacity {
		return fmt.Errorf("sched: job %q needs %d nodes, pool is %d", j.Name, j.Need, d.Capacity)
	}
	if prev := d.Job(j.Name); prev != nil && prev.state != Done {
		return fmt.Errorf("sched: duplicate job %q", j.Name)
	}
	return nil
}

// enroll registers a validated job in the queue.
func (d *Scheduler) enroll(j *Job) {
	now := d.S.Now()
	j.sched = d
	j.state = Queued
	j.submitted = now
	j.queuedSince = now
	j.lastActive = now
	j.autoResume = true
	j.idx = len(d.jobs)
	j.runIdx = -1
	d.demand += j.Need
	d.jobs = append(d.jobs, j)
	d.byName[j.Name] = j
	d.queue.pushBack(j)
}

// Submit queues a job for admission. Jobs whose demand can never fit
// are rejected outright.
func (d *Scheduler) Submit(j *Job) error {
	if err := d.validate(j); err != nil {
		return err
	}
	d.enroll(j)
	d.kick()
	return nil
}

// SubmitGang queues a batch of jobs for co-scheduled admission: the
// whole gang is admitted together once (and only once) the pool can
// hold its combined demand — preempting victims for the total, not
// job by job — so a branch fan-out starts exploring in parallel
// instead of trickling through the FIFO one branch per service window.
// Co-scheduling covers the first admission; a member preempted later
// parks and resumes individually like any tenant.
func (d *Scheduler) SubmitGang(jobs []*Job) error {
	if len(jobs) == 0 {
		return fmt.Errorf("sched: empty gang")
	}
	total := 0
	for _, j := range jobs {
		if err := d.validate(j); err != nil {
			return err
		}
		total += j.Need
	}
	if total > d.Capacity {
		return fmt.Errorf("sched: gang needs %d nodes, pool is %d", total, d.Capacity)
	}
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if seen[j.Name] {
			return fmt.Errorf("sched: duplicate job %q in gang", j.Name)
		}
		seen[j.Name] = true
	}
	d.nextGang++
	for _, j := range jobs {
		j.gang = d.nextGang
		d.enroll(j)
	}
	d.kick()
	return nil
}

// Touch records activity for a job — the signal IdleFirst preempts on
// the absence of. O(1): at 10k tenants ticking, this is the
// scheduler's most-called entry point.
func (d *Scheduler) Touch(name string) {
	if j := d.byName[name]; j != nil {
		j.lastActive = d.S.Now()
	}
}

// Park voluntarily swaps a running job out; it stays parked (holding no
// hardware) until Unpark.
func (d *Scheduler) Park(name string) error {
	j := d.Job(name)
	if j == nil {
		return fmt.Errorf("sched: no job %q", name)
	}
	if j.state != Running {
		return fmt.Errorf("sched: job %q is %v, not running", name, j.state)
	}
	if j.Hooks.Park == nil {
		return fmt.Errorf("sched: job %q cannot be parked", name)
	}
	j.autoResume = false
	// A voluntary park still bills the job's transfer cost, but not the
	// scheduler's PreemptedBytes ledger — that tracks its own decisions.
	j.lastParkCost = j.parkCost()
	d.park(j)
	return nil
}

// Unpark re-queues a parked job for admission.
func (d *Scheduler) Unpark(name string) error {
	j := d.Job(name)
	if j == nil {
		return fmt.Errorf("sched: no job %q", name)
	}
	if j.state != Parked {
		return fmt.Errorf("sched: job %q is %v, not parked", name, j.state)
	}
	j.autoResume = true
	d.enqueue(j)
	d.kick()
	return nil
}

// Fail records a job's crash: whatever hardware it holds returns to
// the pool and the job leaves service until Recover re-queues it (or
// Finish retires it). A job crashed mid-park (a HoldResume swap-out
// whose epoch will never complete) releases its hardware here too — a
// crash must never leak pool nodes.
func (d *Scheduler) Fail(name string) error {
	j := d.Job(name)
	if j == nil {
		return fmt.Errorf("sched: no job %q", name)
	}
	switch j.state {
	case Running:
		d.untrackRun(j)
		d.setFree(d.free + j.Need)
	case Parking:
		// The in-flight park will never call done; settle its ledger.
		d.parksInFlight--
		d.setFree(d.free + j.Need)
	case Parked:
		// No hardware held; the crash only loses un-committed progress.
	case Queued:
		d.dequeue(j)
	default:
		return fmt.Errorf("sched: job %q is %v, cannot fail", name, j.state)
	}
	j.state = Crashed
	j.gang = 0
	d.Failures++
	d.kick()
	return nil
}

// Recover re-queues a crashed job for admission; its Resume hook runs
// on re-admission, where the hosting layer restores the experiment
// from its last committed checkpoint epoch (or re-instantiates it from
// scratch, for the stateless baseline).
func (d *Scheduler) Recover(name string) error {
	j := d.Job(name)
	if j == nil {
		return fmt.Errorf("sched: no job %q", name)
	}
	if j.state != Crashed {
		return fmt.Errorf("sched: job %q is %v, not crashed", name, j.state)
	}
	j.autoResume = true
	d.Recoveries++
	d.enqueue(j)
	d.kick()
	return nil
}

// DrainFor parks (through the normal swap-out path) enough running
// victims, chosen in policy order, that the named queued or crashed job
// could be admitted once their parks complete. It is the remediation
// controller's proactive path: instead of waiting for the job to reach
// the queue head and preempt, the drain starts freeing capacity the
// moment a failure is detected. Drained jobs re-queue and resume like
// any preempted tenant. Returns how many victims were drained; zero
// when capacity already suffices, parks are in flight, or residency
// protection leaves no mature victim set that covers the shortfall.
func (d *Scheduler) DrainFor(name string) (int, error) {
	j := d.Job(name)
	if j == nil {
		return 0, fmt.Errorf("sched: no job %q", name)
	}
	if j.state != Queued && j.state != Crashed {
		return 0, fmt.Errorf("sched: job %q is %v, not awaiting admission", name, j.state)
	}
	shortfall := j.Need - d.avail()
	if shortfall <= 0 || d.parksInFlight > 0 {
		return 0, nil
	}
	pool, nextEligible := d.victims(j)
	var chosen []*Job
	freed := 0
	for freed < shortfall && pool.Len() > 0 {
		v := pool.pop()
		chosen = append(chosen, v)
		freed += v.Need
	}
	if freed < shortfall {
		if nextEligible < sim.Never {
			d.wakeAt(nextEligible)
		}
		return 0, nil
	}
	for _, v := range chosen {
		d.Drains++
		cost := v.parkCost()
		v.lastParkCost = cost
		d.PreemptedBytes += cost
		d.park(v)
	}
	return len(chosen), nil
}

// Finish retires a job, releasing its hardware if it holds any.
func (d *Scheduler) Finish(name string) error {
	j := d.Job(name)
	if j == nil {
		return fmt.Errorf("sched: no job %q", name)
	}
	switch j.state {
	case Running:
		d.untrackRun(j)
		d.setFree(d.free + j.Need)
	case Parked, Crashed:
		// No hardware held.
	case Queued:
		d.dequeue(j)
	default:
		return fmt.Errorf("sched: job %q is %v, cannot finish", name, j.state)
	}
	d.retire(j)
	d.kick()
	return nil
}

// retire moves a job to Done, keeping the all-done counter current.
func (d *Scheduler) retire(j *Job) {
	j.state = Done
	d.demand -= j.Need
	d.doneJobs++
}

// AllDone reports whether every submitted job has finished. O(1): the
// evaluation drivers poll it every few simulated seconds.
func (d *Scheduler) AllDone() bool {
	return len(d.jobs) > 0 && d.doneJobs == len(d.jobs)
}

func (d *Scheduler) enqueue(j *Job) {
	j.state = Queued
	j.queuedSince = d.S.Now()
	d.queue.pushBack(j)
}

// dequeue removes a queued job from the admission queue and settles
// the wait it accumulated — the one shared exit path for admission,
// failure, and retirement of queued jobs (Fail and Finish used to
// carry copy-pasted O(n) splice loops here).
func (d *Scheduler) dequeue(j *Job) {
	d.queue.remove(j)
	j.queuedWait += d.S.Now() - j.queuedSince
}

// kick admits as much of the queue head as capacity allows, preempting
// by policy when it does not fit. A gang at the head is sized and
// admitted as a unit: all members or none. The whole admissible
// head-run is discovered in one queue walk per round — admitting a
// batch never re-scans what it already measured.
func (d *Scheduler) kick() {
	if d.Instrument {
		d.Kicks++
		d.kickDepth++
		if d.kickDepth == 1 {
			start := time.Now()
			defer func() {
				d.kickDepth--
				d.DecisionNanos += int64(time.Since(start))
			}()
		} else {
			defer func() { d.kickDepth-- }()
		}
	}
	for d.queue.len() > 0 {
		head := d.queue.front()
		members, need := 1, head.Need
		if head.gang != 0 {
			// Gang members are enqueued contiguously and lose their gang
			// tag if individually re-queued, so the leading run is the
			// whole co-scheduling unit.
			for q := head.qnext; q != nil && q.gang == head.gang; q = q.qnext {
				members++
				need += q.Need
			}
		}
		if d.avail() >= need {
			if members > 1 {
				d.GangAdmissions++
			}
			for i := 0; i < members; i++ {
				d.admit(d.queue.front())
			}
			continue
		}
		// Head-of-line blocking is deliberate: FIFO admission order is
		// part of the facility's fairness contract.
		if d.parksInFlight == 0 {
			d.tryPreempt(head, need)
		}
		return
	}
}

func (d *Scheduler) admit(j *Job) {
	now := d.S.Now()
	d.dequeue(j)
	d.setFree(d.free - j.Need)
	j.admittedAt = now
	j.lastActive = now
	j.admissions++
	d.Admissions++
	live := func(err error) {
		if err != nil {
			// The instantiation or restore failed: give the hardware
			// back. A first admission that cannot instantiate never
			// will, so the job retires; a failed resume parks the job
			// (state preserved on the file server) for another attempt.
			d.setFree(d.free + j.Need)
			if j.state == Starting {
				d.retire(j)
			} else {
				j.state = Parked
				j.autoResume = false
			}
			d.kick()
			return
		}
		j.state = Running
		j.runningSince = d.S.Now()
		j.lastActive = d.S.Now()
		d.trackRun(j)
		// A job entering service may be the missing preemption victim
		// for the queue head (once its residency matures).
		d.kick()
	}
	if j.admissions > 1 {
		j.state = Resuming
		j.Hooks.Resume(live)
		return
	}
	j.state = Starting
	j.Hooks.Start(live)
}

func (d *Scheduler) tryPreempt(head *Job, need int) {
	shortfall := need - d.avail()
	pool, nextEligible := d.victims(head)
	// Pop victims in policy order until the shortfall is covered:
	// O(k log n) against the legacy sorted-scan's O(n²).
	var chosen []*Job
	freed := 0
	for freed < shortfall && pool.Len() > 0 {
		v := pool.pop()
		chosen = append(chosen, v)
		freed += v.Need
	}
	if freed < shortfall {
		// Not enough victims yet. If residency protection is the only
		// obstacle, wake up when the next victim matures.
		if nextEligible < sim.Never {
			d.wakeAt(nextEligible)
		}
		return
	}
	for _, v := range chosen {
		v.preemptions++
		d.Preemptions++
		cost := v.parkCost()
		v.lastParkCost = cost
		d.PreemptedBytes += cost
		d.park(v)
	}
}

func (d *Scheduler) park(v *Job) {
	d.untrackRun(v)
	v.state = Parking
	v.gang = 0 // co-scheduling covers the first admission only
	d.parksInFlight++
	v.Hooks.Park(func(err error) {
		if v.state != Parking {
			// A crash (Fail) superseded this park and settled its ledger.
			return
		}
		d.parksInFlight--
		if err != nil {
			// The swap-out aborted (an epoch failure): the experiment
			// was thawed and keeps running on its hardware. Restart the
			// residency clock so the next preemption attempt does not
			// re-freeze it immediately.
			v.state = Running
			v.runningSince = d.S.Now()
			d.trackRun(v)
			d.kick()
			return
		}
		v.state = Parked
		d.setFree(d.free + v.Need)
		if v.autoResume {
			d.enqueue(v)
		}
		d.kick()
	})
}

// wakeAt arms the residency-maturity alarm, reusing one timer
// allocation across the scheduler's lifetime.
func (d *Scheduler) wakeAt(t sim.Time) {
	if d.wake == nil {
		d.wake = d.S.NewTimer("sched.wake", func() { d.kick() })
	}
	if d.wake.Pending() && d.wake.When() <= t {
		return
	}
	d.wake.Schedule(t)
}
