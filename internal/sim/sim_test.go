package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30, "c", func() { order = append(order, 3) })
	s.At(10, "a", func() { order = append(order, 1) })
	s.At(20, "b", func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if s.Now() != 30 {
		t.Fatalf("clock = %v, want 30", s.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, "tie", func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.At(10, "x", func() { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	// Double cancel is a no-op.
	s.Cancel(e)
	s.Cancel(nil)
}

func TestCancelDuringRun(t *testing.T) {
	s := New(1)
	var b *Event
	bFired := false
	s.At(10, "a", func() { s.Cancel(b) })
	b = s.At(20, "b", func() { bFired = true })
	s.Run()
	if bFired {
		t.Fatal("event cancelled from another event still fired")
	}
}

func TestReschedule(t *testing.T) {
	s := New(1)
	var at Time
	e := s.At(10, "x", func() { at = s.Now() })
	s.Reschedule(e, 50)
	s.Run()
	if at != 50 {
		t.Fatalf("fired at %v, want 50", at)
	}
}

func TestRescheduleDeadPanics(t *testing.T) {
	s := New(1)
	e := s.At(10, "x", func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic rescheduling fired event")
		}
	}()
	s.Reschedule(e, 20)
}

func TestPastSchedulingPanics(t *testing.T) {
	s := New(1)
	s.At(10, "x", func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic scheduling in the past")
		}
	}()
	s.At(5, "past", func() {})
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, ti := range []Time{10, 20, 30, 40} {
		ti := ti
		s.At(ti, "e", func() { fired = append(fired, ti) })
	}
	s.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events", fired)
	}
	if s.Now() != 25 {
		t.Fatalf("clock = %v, want 25", s.Now())
	}
	s.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %v, want 4 events", fired)
	}
}

func TestRunFor(t *testing.T) {
	s := New(1)
	s.RunFor(5 * Second)
	if s.Now() != 5*Second {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	n := 0
	s.At(10, "a", func() { n++; s.Stop() })
	s.At(20, "b", func() { n++ })
	s.Run()
	if n != 1 {
		t.Fatalf("n = %d, want 1 (stop should halt the loop)", n)
	}
	s.Run() // resume
	if n != 2 {
		t.Fatalf("n = %d, want 2 after resuming", n)
	}
}

func TestAfterClampsNegative(t *testing.T) {
	s := New(1)
	fired := Time(-1)
	s.RunFor(100)
	s.After(-50, "neg", func() { fired = s.Now() })
	s.Run()
	if fired != 100 {
		t.Fatalf("negative After fired at %v, want now (100)", fired)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		s := New(42)
		var out []Time
		var rec func()
		n := 0
		rec = func() {
			out = append(out, s.Now())
			n++
			if n < 100 {
				s.After(s.Jitter(Millisecond)+1, "r", rec)
			}
		}
		s.At(0, "start", rec)
		s.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestJitterBounds(t *testing.T) {
	s := New(7)
	if s.Jitter(0) != 0 {
		t.Fatal("Jitter(0) != 0")
	}
	for i := 0; i < 1000; i++ {
		j := s.Jitter(100)
		if j < 0 || j >= 100 {
			t.Fatalf("jitter out of range: %v", j)
		}
	}
}

func TestNormalTruncation(t *testing.T) {
	s := New(7)
	for i := 0; i < 1000; i++ {
		if v := s.Normal(0, 1000); v < 0 {
			t.Fatalf("Normal returned negative %v", v)
		}
	}
}

func TestUniform(t *testing.T) {
	s := New(7)
	if got := s.Uniform(5, 5); got != 5 {
		t.Fatalf("degenerate Uniform = %v", got)
	}
	for i := 0; i < 1000; i++ {
		v := s.Uniform(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	tt := 1500 * Millisecond
	if tt.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v", tt.Seconds())
	}
	if tt.Millis() != 1500 {
		t.Fatalf("Millis = %v", tt.Millis())
	}
	if (2 * Microsecond).Micros() != 2 {
		t.Fatal("Micros")
	}
	if tt.String() != "1.5s" {
		t.Fatalf("String = %q", tt.String())
	}
}

// Property: for any set of event delays, events fire in nondecreasing
// time order and the clock never runs backwards.
func TestPropertyMonotonicDelivery(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New(3)
		var stamps []Time
		for _, d := range delays {
			s.After(Time(d), "p", func() { stamps = append(stamps, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(stamps); i++ {
			if stamps[i] < stamps[i-1] {
				return false
			}
		}
		return len(stamps) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling any subset of events means exactly the others fire.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(delays []uint16, mask []bool) bool {
		s := New(4)
		fired := make(map[int]bool)
		events := make([]*Event, len(delays))
		for i, d := range delays {
			i := i
			events[i] = s.After(Time(d)+1, "p", func() { fired[i] = true })
		}
		for i := range delays {
			if i < len(mask) && mask[i] {
				s.Cancel(events[i])
			}
		}
		s.Run()
		for i := range delays {
			want := !(i < len(mask) && mask[i])
			if fired[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(1, "b", func() {})
		s.Step()
	}
}
