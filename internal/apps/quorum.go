package apps

import (
	"emucheck/internal/guest"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

// QuorumNode is one member of a distributed quorum app: a guest kernel
// plus its experiment-network address and logical name. Rank is the
// node's position in the member list — bully elections are decided by
// rank, highest alive wins.
type QuorumNode struct {
	Name string
	K    *guest.Kernel
	Addr simnet.Addr
}

// QuorumConfig parameterizes a quorum/leader-election run.
type QuorumConfig struct {
	// Heartbeat is the leader's announcement period (default 1 s).
	Heartbeat sim.Time
	// Timeout bounds both the wait for an "alive" answer during an
	// election round and the heartbeat silence a follower tolerates
	// before calling a re-election (default 3 heartbeats).
	Timeout sim.Time
	// CrashLeaderAt crash-stops the initial leader — the highest-ranked
	// node, which bully always elects first — at this instant of its own
	// virtual time (0 = never). The crash is fail-silent: the node stops
	// heartbeating, answering, and campaigning, and the survivors must
	// detect the silence and re-elect the next-highest rank.
	CrashLeaderAt sim.Time
	// OnTick observes protocol progress (a heartbeat received, an
	// election settled) — the liveness signal a hosting scenario feeds
	// to its scheduler.
	OnTick func()
	// OnOutcome reports each election verdict as "leader=<name>"; the
	// last report is the run's terminal outcome.
	OnOutcome func(string)
}

// Quorum is a running bully-style leader election: every member
// campaigns by rank, the winner announces itself and heartbeats, and
// followers that stop hearing heartbeats re-elect. All timing is guest
// virtual time, so checkpoints and swaps stay transparent to the
// protocol, and all choices are deterministic — no RNG draws.
type Quorum struct {
	cfg QuorumConfig

	// Elections counts coordinator announcements (initial election plus
	// every re-election). Crashes counts injected crash-stops.
	Elections int
	Crashes   int

	members []*quorumMember
}

// quorumMember is one node's protocol state.
type quorumMember struct {
	q     *Quorum
	rank  int
	node  QuorumNode
	peers []QuorumNode // all members, indexed by rank

	alive    bool
	isLeader bool
	electing bool
	answered bool // a higher rank responded to the current campaign
	lastHB   sim.Time
}

// RunQuorum starts the election protocol over the given members
// (rank = slice index) and returns the running app. Needs at least two
// members; the protocol runs until its kernels stop (it has no natural
// end — the hosting scenario bounds the run).
func RunQuorum(nodes []QuorumNode, cfg QuorumConfig) *Quorum {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = sim.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 3 * cfg.Heartbeat
	}
	q := &Quorum{cfg: cfg}
	for i, n := range nodes {
		m := &quorumMember{q: q, rank: i, node: n, peers: nodes, alive: true}
		q.members = append(q.members, m)
		m.install()
	}
	for _, m := range q.members {
		m.start()
	}
	return q
}

// Leader reports the highest-ranked member that currently believes it
// leads ("" before the first election settles).
func (q *Quorum) Leader() string {
	for i := len(q.members) - 1; i >= 0; i-- {
		if m := q.members[i]; m.alive && m.isLeader {
			return m.node.Name
		}
	}
	return ""
}

func (q *Quorum) tick() {
	if q.cfg.OnTick != nil {
		q.cfg.OnTick()
	}
}

// install registers the member's protocol ports. Every handler guards
// on alive: a crash-stopped node is deaf and mute (crash-stop model).
func (m *quorumMember) install() {
	k := m.node.K
	k.Handle("q.elect", func(from simnet.Addr, msg *guest.Message) {
		if !m.alive {
			return
		}
		// A lower rank is campaigning: veto it and campaign ourselves.
		k.Send(from, 120, &guest.Message{Port: "q.alive"})
		m.startElection()
	})
	k.Handle("q.alive", func(simnet.Addr, *guest.Message) {
		if !m.alive {
			return
		}
		m.answered = true
	})
	k.Handle("q.coord", func(_ simnet.Addr, msg *guest.Message) {
		if !m.alive {
			return
		}
		m.electing = false
		m.isLeader = false
		m.lastHB = k.Monotonic()
		m.q.tick()
	})
	k.Handle("q.hb", func(simnet.Addr, *guest.Message) {
		if !m.alive {
			return
		}
		m.lastHB = k.Monotonic()
		m.q.tick()
	})
}

// start staggers the initial campaigns by rank (so the first election
// converges in one round) and arms the follower monitor — plus the
// injected crash on the to-be leader.
func (m *quorumMember) start() {
	k := m.node.K
	m.lastHB = k.Monotonic()
	k.Usleep(50*sim.Millisecond*sim.Time(m.rank+1), func() {
		m.startElection()
	})
	m.monitor()
	if m.q.cfg.CrashLeaderAt > 0 && m.rank == len(m.peers)-1 {
		k.Usleep(m.q.cfg.CrashLeaderAt, func() {
			m.alive = false
			m.isLeader = false
			m.q.Crashes++
		})
	}
}

// monitor is the failure detector: a follower that has heard no
// heartbeat (and no coordinator announcement) for Timeout calls a
// re-election. Leaders and in-flight campaigns skip the check.
func (m *quorumMember) monitor() {
	m.node.K.Usleep(m.q.cfg.Heartbeat, func() {
		if !m.alive {
			return
		}
		if !m.isLeader && !m.electing && m.node.K.Monotonic()-m.lastHB > m.q.cfg.Timeout {
			m.startElection()
		}
		m.monitor()
	})
}

// startElection runs one bully campaign: challenge every higher rank,
// and claim leadership if none answers within the timeout.
func (m *quorumMember) startElection() {
	if !m.alive || m.electing || m.isLeader {
		return
	}
	m.electing = true
	m.answered = false
	k := m.node.K
	for r := m.rank + 1; r < len(m.peers); r++ {
		k.Send(m.peers[r].Addr, 120, &guest.Message{Port: "q.elect"})
	}
	k.Usleep(m.q.cfg.Timeout, func() {
		if !m.alive || !m.electing {
			return
		}
		if m.answered {
			// A higher rank lives; its coordinator announcement should
			// follow. If it never does (it crashed mid-election), clear
			// the campaign and let the monitor retry.
			k.Usleep(2*m.q.cfg.Timeout, func() {
				m.electing = false
			})
			return
		}
		m.becomeLeader()
	})
}

// becomeLeader announces the victory to every other member and starts
// the heartbeat stream.
func (m *quorumMember) becomeLeader() {
	m.electing = false
	m.isLeader = true
	m.q.Elections++
	k := m.node.K
	for r, p := range m.peers {
		if r != m.rank {
			k.Send(p.Addr, 150, &guest.Message{Port: "q.coord", Data: m.node.Name})
		}
	}
	if m.q.cfg.OnOutcome != nil {
		m.q.cfg.OnOutcome("leader=" + m.node.Name)
	}
	m.q.tick()
	m.heartbeat()
}

// heartbeat is the leader's periodic announcement loop; it dies with
// the leader (alive guard) or with a demotion.
func (m *quorumMember) heartbeat() {
	m.node.K.Usleep(m.q.cfg.Heartbeat, func() {
		if !m.alive || !m.isLeader {
			return
		}
		for r, p := range m.peers {
			if r != m.rank {
				m.node.K.Send(p.Addr, 100, &guest.Message{Port: "q.hb"})
			}
		}
		m.heartbeat()
	})
}
