package apps

import (
	"emucheck/internal/guest"
	"emucheck/internal/metrics"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
	"emucheck/internal/tcpsim"
)

// PieceSize is the BitTorrent piece size (a typical 256 KiB).
const PieceSize = 256 << 10

// btConn is one directed data path between two peers: a TCP stream
// carrying pieces, with a piece queue on the sending side.
type btConn struct {
	snd   *tcpsim.Sender
	rcv   *tcpsim.Receiver
	queue []int // piece indices queued for transmission

	sentBytes    int64 // bytes queued by the application
	extended     int64 // bytes released to TCP so far (pacing)
	pacing       bool
	deliverTotal int64 // cumulative in-order bytes delivered at the receiver
	consumed     int64 // delivered bytes already credited to pieces
}

// BitTorrent is the Fig. 7 workload: one seeder and several clients
// cooperatively downloading a file over a 100 Mbps LAN. The tracker is
// static (the paper modified BitTorrent the same way for
// predictability). Peers request the rarest piece they lack from the
// first peer that has it; every received piece is announced to the
// swarm, so clients serve each other as they accumulate pieces.
type BitTorrent struct {
	Seeder  *guest.Kernel
	Clients []*guest.Kernel
	Pieces  int

	// have[node][piece]
	have  map[string][]bool
	conns map[string]*btConn // "src>dst" -> connection

	// SeederTrace records outgoing data-segment (time, bytes) per
	// client, as captured on the seeder node (the paper's measurement
	// point). Keyed by client name.
	SeederTrace map[string]*metrics.Series

	Completed map[string]bool

	// UploadPace is the application-level per-connection pacing between
	// piece transmissions, standing in for BitTorrent's choking and
	// unchoke-rotation behaviour; the default lands each client near the
	// paper's ~1 MB/s (Fig. 7). Zero disables pacing.
	UploadPace sim.Time

	// req tracks outstanding piece requests per client.
	req map[string][]bool
}

// NewBitTorrent wires the swarm for a file of the given size.
func NewBitTorrent(seeder *guest.Kernel, clients []*guest.Kernel, fileBytes int64) *BitTorrent {
	bt := &BitTorrent{
		Seeder:      seeder,
		Clients:     clients,
		Pieces:      int((fileBytes + PieceSize - 1) / PieceSize),
		have:        make(map[string][]bool),
		conns:       make(map[string]*btConn),
		SeederTrace: make(map[string]*metrics.Series),
		Completed:   make(map[string]bool),
		UploadPace:  245 * sim.Millisecond,
	}
	bt.have[seeder.Name] = make([]bool, bt.Pieces)
	for i := range bt.have[seeder.Name] {
		bt.have[seeder.Name][i] = true
	}
	all := append([]*guest.Kernel{seeder}, clients...)
	for _, c := range clients {
		bt.have[c.Name] = make([]bool, bt.Pieces)
		bt.SeederTrace[c.Name] = metrics.NewSeries("bt." + c.Name)
	}
	// Full mesh of directed piece streams.
	for _, a := range all {
		for _, b := range all {
			if a != b {
				bt.wire(a, b)
			}
		}
	}
	// Control plane: piece announcements and requests.
	for _, k := range all {
		k := k
		k.Handle("bt-ctl", func(from simnet.Addr, m *guest.Message) { bt.onControl(k, from, m) })
	}
	return bt
}

func connKey(src, dst string) string { return src + ">" + dst }

// wire creates the directed TCP stream a -> b.
func (bt *BitTorrent) wire(a, b *guest.Kernel) {
	key := connKey(a.Name, b.Name)
	port := "bt-data:" + key
	sndEnv := &tcpEnv{k: a, peer: simnet.Addr(b.Name), port: port}
	rcvEnv := &tcpEnv{k: b, peer: simnet.Addr(a.Name), port: port}
	c := &btConn{snd: tcpsim.NewSender(sndEnv, key), rcv: tcpsim.NewReceiver(rcvEnv, key)}
	bt.conns[key] = c

	a.Handle(port, func(from simnet.Addr, m *guest.Message) {
		seg := m.Data.(*tcpsim.Segment)
		c.snd.HandleSegment(seg)
	})
	b.Handle(port, func(from simnet.Addr, m *guest.Message) {
		seg := m.Data.(*tcpsim.Segment)
		if seg.Len > 0 && a == bt.Seeder {
			bt.SeederTrace[b.Name].Add(bt.Seeder.Monotonic(), float64(seg.WireSize()))
		}
		c.rcv.HandleSegment(seg)
	})
	c.rcv.OnData = func(n int, total int64) {
		c.deliverTotal = total
		bt.onBytes(b, c)
	}
	c.snd.Stream(0) // nothing flows until pieces are queued
}

// queuePiece schedules one piece on the a->b stream, released to TCP
// under the upload pacing.
func (bt *BitTorrent) queuePiece(a, b *guest.Kernel, piece int) {
	c := bt.conns[connKey(a.Name, b.Name)]
	c.queue = append(c.queue, piece)
	c.sentBytes += PieceSize
	if !c.pacing {
		bt.drainPaced(a, c)
	}
}

// drainPaced releases one piece per pacing interval to the TCP stream.
func (bt *BitTorrent) drainPaced(a *guest.Kernel, c *btConn) {
	if c.extended >= c.sentBytes {
		c.pacing = false
		return
	}
	c.pacing = true
	c.extended += PieceSize
	c.snd.Stream(c.extended)
	if bt.UploadPace <= 0 {
		bt.drainPaced(a, c)
		return
	}
	a.AfterVirtual(bt.UploadPace, "bt.pace", func() { bt.drainPaced(a, c) })
}

// onBytes fires as in-order stream bytes land at b: completed pieces
// are marked and announced.
func (bt *BitTorrent) onBytes(b *guest.Kernel, c *btConn) {
	for len(c.queue) > 0 && c.deliverTotal-c.consumed >= PieceSize {
		piece := c.queue[0]
		c.queue = c.queue[1:]
		c.consumed += PieceSize
		bt.completePiece(b, piece)
	}
}

func (bt *BitTorrent) completePiece(b *guest.Kernel, piece int) {
	if bt.have[b.Name][piece] {
		return
	}
	bt.have[b.Name][piece] = true
	// Announce to the swarm.
	for _, peer := range bt.peers(b) {
		b.Send(simnet.Addr(peer.Name), 80, &guest.Message{Port: "bt-ctl", Data: [2]int{announce, piece}})
	}
	if bt.countHave(b.Name) == bt.Pieces {
		bt.Completed[b.Name] = true
	}
	bt.requestNext(b)
}

const (
	announce = iota
	request
)

func (bt *BitTorrent) peers(k *guest.Kernel) []*guest.Kernel {
	var out []*guest.Kernel
	if k != bt.Seeder {
		out = append(out, bt.Seeder)
	}
	for _, c := range bt.Clients {
		if c != k {
			out = append(out, c)
		}
	}
	return out
}

// CountHave reports how many pieces the named node holds.
func (bt *BitTorrent) CountHave(name string) int { return bt.countHave(name) }

func (bt *BitTorrent) countHave(name string) int {
	n := 0
	for _, h := range bt.have[name] {
		if h {
			n++
		}
	}
	return n
}

// onControl handles announcements and piece requests.
func (bt *BitTorrent) onControl(k *guest.Kernel, from simnet.Addr, m *guest.Message) {
	msg := m.Data.([2]int)
	kind, piece := msg[0], msg[1]
	switch kind {
	case announce:
		bt.requestNext(k)
	case request:
		if bt.have[k.Name][piece] {
			peer := bt.kernelByName(string(from))
			if peer != nil {
				bt.queuePiece(k, peer, piece)
			}
		}
	}
}

func (bt *BitTorrent) kernelByName(name string) *guest.Kernel {
	if bt.Seeder.Name == name {
		return bt.Seeder
	}
	for _, c := range bt.Clients {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// requestNext asks peers for missing pieces, keeping a small pipeline
// of outstanding requests (rarest-first approximated by round-robin
// with per-client stride to decorrelate the clients).
func (bt *BitTorrent) requestNext(k *guest.Kernel) {
	if k == bt.Seeder || bt.Completed[k.Name] {
		return
	}
	outstanding := 0
	for _, peer := range bt.peers(k) {
		c := bt.conns[connKey(peer.Name, k.Name)]
		outstanding += len(c.queue)
	}
	const pipeline = 4
	// Start the scan at a per-client offset to decorrelate the clients;
	// the linear walk still visits every piece.
	start := (int(k.Name[len(k.Name)-1]) * bt.Pieces / 7) % bt.Pieces
	for i := 0; outstanding < pipeline && i < bt.Pieces; i++ {
		piece := (start + i) % bt.Pieces
		if bt.have[k.Name][piece] || bt.requested(k, piece) {
			continue
		}
		// Rarest-first in a swarm this small keeps the seeder primary:
		// seeder-only pieces are the rarest. Requests spill over to
		// fellow clients when the seeder's per-connection queue is deep
		// — that spillover is the peer-to-peer serving the paper's
		// BitTorrent exhibits.
		var ordered []*guest.Kernel
		seederQ := len(bt.conns[connKey(bt.Seeder.Name, k.Name)].queue)
		if seederQ <= 2 {
			ordered = append(ordered, bt.Seeder)
		}
		for _, p := range bt.peers(k) {
			if p != bt.Seeder {
				ordered = append(ordered, p)
			}
		}
		if seederQ > 2 {
			ordered = append(ordered, bt.Seeder)
		}
		for _, peer := range ordered {
			if bt.have[peer.Name][piece] {
				bt.markRequested(k, piece)
				k.Send(simnet.Addr(peer.Name), 80, &guest.Message{Port: "bt-ctl", Data: [2]int{request, piece}})
				outstanding++
				break
			}
		}
	}
}

// requested tracking.
func (bt *BitTorrent) requested(k *guest.Kernel, piece int) bool {
	if bt.req == nil {
		return false
	}
	return bt.req[k.Name] != nil && bt.req[k.Name][piece]
}

func (bt *BitTorrent) markRequested(k *guest.Kernel, piece int) {
	if bt.req == nil {
		bt.req = make(map[string][]bool)
	}
	if bt.req[k.Name] == nil {
		bt.req[k.Name] = make([]bool, bt.Pieces)
	}
	bt.req[k.Name][piece] = true
}

// Start kicks every client's request pipeline.
func (bt *BitTorrent) Start() {
	for _, c := range bt.Clients {
		bt.requestNext(c)
	}
}

// AllComplete reports whether every client finished the file.
func (bt *BitTorrent) AllComplete() bool {
	for _, c := range bt.Clients {
		if !bt.Completed[c.Name] {
			return false
		}
	}
	return true
}
