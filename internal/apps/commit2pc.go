package apps

import (
	"fmt"

	"emucheck/internal/guest"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

// CommitNode is one member of a 2PC commit group: the first node is the
// coordinator, the rest are participants.
type CommitNode struct {
	Name string
	K    *guest.Kernel
	Addr simnet.Addr
}

// CommitConfig parameterizes a two-phase-commit run.
type CommitConfig struct {
	// Seed drives the deterministic vote schedule: participant p votes
	// no on round r iff Mix64(seed, r, p) lands in a 1-in-8 slice, so
	// most rounds commit and some abort — all arithmetic, no RNG.
	Seed int64
	// Period is the transaction cadence (default 2 s per round).
	Period sim.Time
	// VoteTimeout bounds the coordinator's vote collection; a missing
	// vote aborts the round (default 600 ms).
	VoteTimeout sim.Time
	// Rounds bounds the run (0 = keep going until the scenario ends).
	Rounds int
	// CrashCoordAtRound crash-stops the coordinator in the middle of
	// this round — after its prepares went out, before any decision —
	// which is exactly 2PC's blocking window: participants that voted
	// yes hold their locks in doubt forever (0 = never crash).
	CrashCoordAtRound int
	// OnTick observes protocol progress (a decision made or applied).
	OnTick func()
	// OnOutcome reports the running tally ("commits=N aborts=M", or the
	// blocked verdict after a coordinator crash); the last report is the
	// run's terminal outcome.
	OnOutcome func(string)
}

// Commit2PC is a running two-phase-commit group: the coordinator drives
// prepare/commit/abort rounds over the experiment network, participants
// journal their votes and applies to disk (dirty state the checkpoint
// lineage carries), and a coordinator crash leaves yes-voters blocked
// in doubt — the classic blocking problem, made observable.
type Commit2PC struct {
	cfg   CommitConfig
	nodes []CommitNode

	// Commits and Aborts count decided rounds; Blocked counts
	// participants left in doubt by a coordinator crash.
	Commits int
	Aborts  int
	Blocked int

	coordAlive bool
	round      int
	collecting bool
	votes      map[int]bool // participant index -> vote of current round
}

// RunCommit2PC starts the commit protocol (nodes[0] coordinates) and
// returns the running app. Needs at least two nodes.
func RunCommit2PC(nodes []CommitNode, cfg CommitConfig) *Commit2PC {
	if cfg.Period <= 0 {
		cfg.Period = 2 * sim.Second
	}
	if cfg.VoteTimeout <= 0 {
		cfg.VoteTimeout = 600 * sim.Millisecond
	}
	c := &Commit2PC{cfg: cfg, nodes: nodes, coordAlive: true}
	c.installCoordinator()
	for p := 1; p < len(nodes); p++ {
		c.installParticipant(p)
	}
	ck := nodes[0].K
	ck.Usleep(cfg.Period, func() { c.runRound() })
	return c
}

// vote is participant p's deterministic ballot for round r.
func (c *Commit2PC) vote(r, p int) bool {
	return sim.Mix64(c.cfg.Seed, int64(r), int64(p))%8 != 0
}

func (c *Commit2PC) tick() {
	if c.cfg.OnTick != nil {
		c.cfg.OnTick()
	}
}

func (c *Commit2PC) report(s string) {
	if c.cfg.OnOutcome != nil {
		c.cfg.OnOutcome(s)
	}
}

// voteMsg rides "2pc.vote": which round, whose ballot, yes or no.
type voteMsg struct {
	Round int
	From  int
	Yes   bool
}

// installCoordinator registers the vote collector.
func (c *Commit2PC) installCoordinator() {
	c.nodes[0].K.Handle("2pc.vote", func(_ simnet.Addr, m *guest.Message) {
		if !c.coordAlive || !c.collecting {
			return
		}
		v, ok := m.Data.(voteMsg)
		if !ok || v.Round != c.round {
			return
		}
		c.votes[v.From] = v.Yes
	})
}

// runRound drives one transaction: prepare fan-out, vote collection
// with a timeout, then a unanimous-commit-or-abort decision fan-out.
func (c *Commit2PC) runRound() {
	if !c.coordAlive || (c.cfg.Rounds > 0 && c.round >= c.cfg.Rounds) {
		return
	}
	c.round++
	r := c.round
	k := c.nodes[0].K
	c.votes = make(map[int]bool)
	c.collecting = true
	for p := 1; p < len(c.nodes); p++ {
		k.Send(c.nodes[p].Addr, 200, &guest.Message{Port: "2pc.prepare", Data: r})
	}
	if r == c.cfg.CrashCoordAtRound {
		// Fail-silent between prepare and decision: the blocking window.
		c.coordAlive = false
		c.collecting = false
		return
	}
	k.Usleep(c.cfg.VoteTimeout, func() {
		if !c.coordAlive {
			return
		}
		c.collecting = false
		decision := "2pc.commit"
		if len(c.votes) < len(c.nodes)-1 {
			decision = "2pc.abort" // a ballot went missing: presume no
		}
		for _, yes := range c.votes {
			if !yes {
				decision = "2pc.abort"
			}
		}
		if decision == "2pc.commit" {
			c.Commits++
		} else {
			c.Aborts++
		}
		// The coordinator journals the decision before announcing it
		// (presumed-nothing log), then fans it out.
		k.WriteDisk(int64(r)<<20, 64<<10, nil)
		for p := 1; p < len(c.nodes); p++ {
			k.Send(c.nodes[p].Addr, 150, &guest.Message{Port: decision, Data: r})
		}
		c.report(fmt.Sprintf("commits=%d aborts=%d", c.Commits, c.Aborts))
		c.tick()
		k.Usleep(c.cfg.Period-c.cfg.VoteTimeout, func() { c.runRound() })
	})
}

// installParticipant registers participant p's prepare and decision
// handlers. A yes vote puts the round in doubt until a decision
// arrives; if the coordinator crash-stopped, the doubt never resolves
// and the participant reports itself blocked.
func (c *Commit2PC) installParticipant(p int) {
	k := c.nodes[p].K
	inDoubt := make(map[int]bool)
	k.Handle("2pc.prepare", func(from simnet.Addr, m *guest.Message) {
		r, ok := m.Data.(int)
		if !ok {
			return
		}
		yes := c.vote(r, p)
		// Journal the ballot before voting — the write the checkpoint
		// lineage must carry for recovery to be honest.
		k.WriteDisk(int64(p)<<30|int64(r)<<16, 32<<10, func() {
			k.Send(from, 150, &guest.Message{Port: "2pc.vote", Data: voteMsg{Round: r, From: p, Yes: yes}})
			if !yes {
				return
			}
			inDoubt[r] = true
			// The block detector: a yes-voter that hears no decision for
			// well past the round budget is wedged on the coordinator.
			k.Usleep(3*c.cfg.Period, func() {
				if inDoubt[r] {
					c.Blocked++
					c.report(fmt.Sprintf("blocked r=%d commits=%d aborts=%d", r, c.Commits, c.Aborts))
				}
			})
		})
	})
	decided := func(_ simnet.Addr, m *guest.Message) {
		r, ok := m.Data.(int)
		if !ok {
			return
		}
		delete(inDoubt, r)
		k.WriteDisk(int64(p)<<30|int64(r)<<16|1<<8, 32<<10, nil)
		c.tick()
	}
	k.Handle("2pc.commit", decided)
	k.Handle("2pc.abort", decided)
}
