package xfer

import (
	"testing"

	"emucheck/internal/sim"
)

func TestWANLinkLatencyFloor(t *testing.T) {
	l := NewWANLink("a->b", 200*sim.Millisecond, 0)
	if l.Rate != DefaultWANRate {
		t.Fatalf("rate = %d, want default %d", l.Rate, DefaultWANRate)
	}
	// A zero-byte control message still pays full propagation delay.
	if got := l.Send(sim.Second, 0); got != sim.Second+200*sim.Millisecond {
		t.Fatalf("zero-byte arrival = %v", got)
	}
	// A payload pays transmission + propagation.
	arr := l.Send(sim.Second, DefaultWANRate) // one second of bytes
	want := sim.Second + sim.Second + 200*sim.Millisecond
	if arr != want {
		t.Fatalf("arrival = %v, want %v", arr, want)
	}
	if l.Msgs != 2 || l.Bytes != DefaultWANRate {
		t.Fatalf("ledger msgs=%d bytes=%d", l.Msgs, l.Bytes)
	}
}

func TestWANLinkSerializes(t *testing.T) {
	l := NewWANLink("a->b", 100*sim.Millisecond, 1<<20) // 1 MB/s
	// First message: 1 MB = 1 s of transmission.
	first := l.Send(0, 1<<20)
	if first != sim.Second+100*sim.Millisecond {
		t.Fatalf("first arrival = %v", first)
	}
	// Second message sent at t=0.5s queues behind the first's bytes.
	second := l.Send(500*sim.Millisecond, 1<<20)
	want := 2*sim.Second + 100*sim.Millisecond
	if second != want {
		t.Fatalf("second arrival = %v, want %v", second, want)
	}
	if l.Queued != 500*sim.Millisecond {
		t.Fatalf("queued = %v, want 500ms", l.Queued)
	}
}

func TestWANLinkRejectsLatencyFreeLink(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-latency WAN link did not panic")
		}
	}()
	NewWANLink("bad", 0, 0)
}
