package notify

import (
	"testing"

	"emucheck/internal/sim"
)

func TestPublishDeliversToAllSubscribers(t *testing.T) {
	s := sim.New(1)
	b := NewBus(s)
	got := 0
	for i := 0; i < 5; i++ {
		b.Subscribe(TopicCheckpoint, func(m *Msg) { got++ })
	}
	b.Publish(&Msg{Topic: TopicCheckpoint, From: "boss", Epoch: 1})
	s.Run()
	if got != 5 {
		t.Fatalf("delivered %d", got)
	}
	if b.Published != 1 || b.Delivered != 5 {
		t.Fatal("counters")
	}
}

func TestTopicsAreIsolated(t *testing.T) {
	s := sim.New(1)
	b := NewBus(s)
	ck, rs := 0, 0
	b.Subscribe(TopicCheckpoint, func(*Msg) { ck++ })
	b.Subscribe(TopicResume, func(*Msg) { rs++ })
	b.Publish(&Msg{Topic: TopicResume})
	s.Run()
	if ck != 0 || rs != 1 {
		t.Fatalf("ck=%d rs=%d", ck, rs)
	}
}

func TestDeliveryLatencyVariability(t *testing.T) {
	s := sim.New(1)
	b := NewBus(s)
	var times []sim.Time
	for i := 0; i < 50; i++ {
		b.Subscribe(TopicCheckpoint, func(*Msg) { times = append(times, s.Now()) })
	}
	b.Publish(&Msg{Topic: TopicCheckpoint})
	s.Run()
	min, max := sim.Never, sim.Time(0)
	for _, ti := range times {
		if ti < min {
			min = ti
		}
		if ti > max {
			max = ti
		}
	}
	if min < b.BaseLatency {
		t.Fatalf("delivery before base latency: %v", min)
	}
	if max-min < 100*sim.Microsecond {
		t.Fatalf("no jitter spread: %v..%v", min, max)
	}
	if max > b.BaseLatency+b.JitterMax {
		t.Fatalf("delivery too late: %v", max)
	}
}

func TestMessageFieldsPreserved(t *testing.T) {
	s := sim.New(1)
	b := NewBus(s)
	var got *Msg
	b.Subscribe(TopicCheckpoint, func(m *Msg) { got = m })
	b.Publish(&Msg{Topic: TopicCheckpoint, From: "n3", At: 5 * sim.Second, Epoch: 7, Data: "x"})
	s.Run()
	if got.From != "n3" || got.At != 5*sim.Second || got.Epoch != 7 || got.Data != "x" {
		t.Fatalf("msg mangled: %+v", got)
	}
}

func TestBarrier(t *testing.T) {
	fired := false
	b := NewBarrier(3, func() { fired = true })
	b.Arrive("a")
	b.Arrive("a") // duplicate
	b.Arrive("b")
	if fired || b.Done() {
		t.Fatal("premature fire")
	}
	if b.Arrived() != 2 {
		t.Fatalf("arrived = %d", b.Arrived())
	}
	b.Arrive("c")
	if !fired || !b.Done() {
		t.Fatal("barrier did not fire")
	}
	b.Arrive("d") // after done: no double-fire, no panic
}

func TestBarrierOfOne(t *testing.T) {
	fired := false
	b := NewBarrier(1, func() { fired = true })
	b.Arrive("solo")
	if !fired {
		t.Fatal("no fire")
	}
}
