// Package scengen deterministically generates scenario files for the
// suite runner: a seed and an index fully determine one scenario, so a
// generated corpus is reproducible from two integers. Eight scenario
// shapes rotate by index — a time-shared multi-tenant mix, an
// incremental-swap storage-tier run, a fault-injection-and-recovery
// run, a gang-admitted branch search, the two distributed agreement
// workloads (quorum election, 2PC commit), a federated-fleet
// sharding run, and an unattended health-loop remediation run — which
// guarantees any window of eight consecutive
// indices covers every shape. All other
// axes (tenant count, policy, swap mode, storage backend and cache
// size, fault mix, fan-out, oversubscription ratio) are drawn
// arithmetically from sim.Mix64(seed, index, axis): no math/rand, no
// global state, no generation-order dependence.
package scengen

import (
	"fmt"

	"emucheck/internal/scenario"
	"emucheck/internal/sim"
)

// Axis tags keep the Mix64 draws for different knobs independent: two
// axes never see the same mixed word for one (seed, index).
const (
	axFileSeed int64 = iota + 1
	axTenants
	axPolicy
	axSwap
	axBackend
	axCache
	axOversub
	axFanOut
	axNodes
	axWorkload
	axPriority
	axFaultNode
	axCrashRound
	axFacilities
	axWarm
	axWorkers
	axHealthPolicy
	axCrashAt
)

// Shapes in rotation order. Exported so the suite's coverage report
// and the generator tests agree on the catalog.
var Shapes = []string{
	"timeshare", "incremental", "faults", "search", "quorum", "commit2pc",
	"federation", "remediate",
}

// pick draws a uniform value in [0, n) for one (seed, index, axis).
func pick(seed int64, i int, axis int64, n uint64) uint64 {
	return sim.Mix64(seed, int64(i), axis) % n
}

// Generate builds scenario number i of the corpus keyed by seed. The
// result always passes scenario.Validate; same inputs always produce
// the same file.
func Generate(seed int64, i int) *scenario.File {
	shape := Shapes[i%len(Shapes)]
	f := &scenario.File{
		Name: fmt.Sprintf("gen-%03d-%s", i, shape),
		Seed: int64(sim.Mix64(seed, int64(i), axFileSeed) >> 1), // keep it non-negative
	}
	switch shape {
	case "timeshare":
		genTimeshare(f, seed, i)
	case "incremental":
		genIncremental(f, seed, i)
	case "faults":
		genFaults(f, seed, i)
	case "search":
		genSearch(f, seed, i)
	case "quorum":
		genQuorum(f, seed, i)
	case "commit2pc":
		genCommit2PC(f, seed, i)
	case "federation":
		genFederation(f, seed, i)
	case "remediate":
		genRemediate(f, seed, i)
	}
	return f
}

// Matrix generates scenarios 0..n-1 of the corpus keyed by seed.
func Matrix(seed int64, n int) []*scenario.File {
	out := make([]*scenario.File, n)
	for i := range out {
		out[i] = Generate(seed, i)
	}
	return out
}

var policies = []string{"fifo", "idle-first", "priority"}

// node makes a swappable node with a name unique across the file (node
// names are control-network identities, so experiments cannot share
// them).
func node(exp string, j int) scenario.Node {
	return scenario.Node{Name: fmt.Sprintf("%s-n%d", exp, j), Swappable: true}
}

// genTimeshare emits the multi-tenant mix: several small tenants over
// a pool sized by the oversubscription axis, under a drawn policy and
// swap mode. Fully-provisioned draws also exercise the explicit
// checkpoint / swap-out / swap-in event path on the first tenant;
// oversubscribed draws leave the churn to the preemptive scheduler.
func genTimeshare(f *scenario.File, seed int64, i int) {
	nTenants := 3 + int(pick(seed, i, axTenants, 4)) // 3..6
	f.Policy = policies[pick(seed, i, axPolicy, 3)]
	if pick(seed, i, axSwap, 2) == 1 {
		f.Swap = "incremental"
	}
	loads := []string{"sleeploop", "diskchurn", "pingpong"}
	total, maxNeed := 0, 0
	for t := 0; t < nTenants; t++ {
		name := fmt.Sprintf("t%d", t)
		wl := loads[pick(seed, i, axWorkload+int64(t)<<8, 3)]
		e := scenario.Experiment{Name: name, Workload: wl, Nodes: []scenario.Node{node(name, 0)}}
		if wl == "pingpong" {
			e.Nodes = append(e.Nodes, node(name, 1))
			e.Links = []scenario.Link{{A: e.Nodes[0].Name, B: e.Nodes[1].Name}}
		}
		if f.Policy == "priority" {
			e.Priority = int(pick(seed, i, axPriority+int64(t)<<8, 3))
		}
		if t > 0 {
			e.SubmitAt = fmt.Sprintf("%ds", 5*t)
		}
		need := len(e.Nodes)
		total += need
		if need > maxNeed {
			maxNeed = need
		}
		f.Experiments = append(f.Experiments, e)
	}
	// Oversubscription axis: 100% provisions everyone, 75%/60% make the
	// scheduler time-share the pool.
	pct := []uint64{100, 75, 60}[pick(seed, i, axOversub, 3)]
	f.Pool = (total*int(pct) + 99) / 100
	if f.Pool < maxNeed {
		f.Pool = maxNeed
	}
	f.RunFor = "4m"
	if int(pct) == 100 {
		f.Events = []scenario.Event{
			{At: "30s", Action: "checkpoint", Target: "t0"},
			{At: "45s", Action: "swap_out", Target: "t0"},
			{At: "2m", Action: "swap_in", Target: "t0"},
		}
		f.Assertions = append(f.Assertions,
			scenario.Assertion{Type: "all_admitted"},
			scenario.Assertion{Type: "min_checkpoints", Target: "t0", Value: 1},
			scenario.Assertion{Type: "state", Target: "t0", Want: "running"},
		)
	}
	f.Assertions = append(f.Assertions, scenario.Assertion{Type: "min_ticks", Target: "t0", Value: 1})
}

// genIncremental emits the storage-tier run: incremental swapping over
// a disk or remote backend fronted by a delta cache, with the epoch
// pipeline and an explicit park/resume cycle generating chain traffic.
func genIncremental(f *scenario.File, seed int64, i int) {
	f.Swap = "incremental"
	backend := []string{"disk", "remote"}[pick(seed, i, axBackend, 2)]
	f.Storage = &scenario.Storage{
		Backend: backend,
		CacheMB: int64(16 << pick(seed, i, axCache, 3)), // 16/32/64 MB
	}
	nTenants := 2 + int(pick(seed, i, axTenants, 2)) // 2..3
	for t := 0; t < nTenants; t++ {
		name := fmt.Sprintf("d%d", t)
		e := scenario.Experiment{Name: name, Workload: "diskchurn", Nodes: []scenario.Node{node(name, 0)}}
		if t == 0 {
			e.Epochs = "20s"
		}
		f.Experiments = append(f.Experiments, e)
	}
	f.Pool = nTenants
	f.RunFor = "4m"
	f.Events = []scenario.Event{
		{At: "30s", Action: "checkpoint", Target: "d0"},
		{At: "70s", Action: "checkpoint", Target: "d0"},
		{At: "90s", Action: "swap_out", Target: "d0"},
		{At: "2m30s", Action: "swap_in", Target: "d0"},
	}
	f.Assertions = []scenario.Assertion{
		{Type: "min_checkpoints", Target: "d0", Value: 2},
		{Type: "state", Target: "d0", Want: "running"},
		{Type: "min_ticks", Target: "d0", Value: 1},
	}
}

// genFaults emits the injection-and-recovery run: a crash against an
// epoch-protected tenant plus control-LAN loss, delay, and a slow
// disk, then an explicit recover from the last committed epoch.
func genFaults(f *scenario.File, seed int64, i int) {
	nTenants := 1 + int(pick(seed, i, axTenants, 2)) // 1..2
	for t := 0; t < nTenants; t++ {
		name := fmt.Sprintf("v%d", t)
		e := scenario.Experiment{Name: name, Workload: "diskchurn", Nodes: []scenario.Node{node(name, 0)}}
		if t == 0 {
			e.Epochs = "15s"
		}
		f.Experiments = append(f.Experiments, e)
	}
	f.Pool = nTenants
	f.RunFor = "4m"
	f.Faults = []scenario.Fault{
		{Kind: "drop", At: "25s", Target: "v0", Count: 1 + int(pick(seed, i, axFaultNode, 2))},
		{Kind: "delay", At: "40s", Target: "v0", For: "30s"},
		{Kind: "slow_disk", At: "50s", Target: "v0", Node: "v0-n0", For: "20s"},
		{Kind: "crash", At: "80s", Target: "v0"},
	}
	f.Events = []scenario.Event{
		{At: "2m", Action: "recover", Target: "v0"},
	}
	f.Assertions = []scenario.Assertion{
		{Type: "recovered", Target: "v0"},
		{Type: "state", Target: "v0", Want: "running"},
	}
}

// genSearch emits the gang-admitted branch fan-out: a racy
// leader-election parent is checkpointed, then forked into a batch of
// branches whose perturbation seeds explore different interleavings.
func genSearch(f *scenario.File, seed int64, i int) {
	fanOut := 2 + int(pick(seed, i, axFanOut, 3)) // 2..4
	e := scenario.Experiment{
		Name: "race", Workload: "racyelect",
		Nodes: []scenario.Node{node("race", 0), node("race", 1)},
		Links: []scenario.Link{{A: "race-n0", B: "race-n1"}},
	}
	f.Experiments = []scenario.Experiment{e}
	// Gang admission needs parent + all branches resident at once.
	f.Pool = 2 * (fanOut + 1)
	f.RunFor = "3m"
	seeds := make([]int64, fanOut)
	for b := range seeds {
		seeds[b] = int64(sim.Mix64(seed, int64(i), axFanOut, int64(b)) >> 1)
	}
	f.Search = &scenario.Search{
		Parent: "race", CheckpointAt: "20s", BranchAt: "40s",
		FanOut: fanOut, Seeds: seeds,
	}
	f.Assertions = []scenario.Assertion{
		{Type: "all_branches_admitted"},
		{Type: "min_distinct_outcomes", Value: 1},
	}
}

// genQuorum emits the leader-election workload: a LAN of members whose
// first-elected leader crash-stops at a seed-derived instant, forcing
// failure detection and a bully re-election — with a checkpoint mid-run
// so the protocol demonstrably survives the control plane's attention.
func genQuorum(f *scenario.File, seed int64, i int) {
	n := 3 + int(pick(seed, i, axNodes, 3)) // 3..5
	e := scenario.Experiment{Name: "q", Workload: "quorum"}
	var members []string
	for j := 0; j < n; j++ {
		nd := node("q", j)
		e.Nodes = append(e.Nodes, nd)
		members = append(members, nd.Name)
	}
	e.LANs = []scenario.LAN{{Name: "qlan", Members: members}}
	f.Experiments = []scenario.Experiment{e}
	f.Pool = n
	f.RunFor = "3m"
	f.Events = []scenario.Event{{At: "30s", Action: "checkpoint", Target: "q"}}
	f.Assertions = []scenario.Assertion{
		{Type: "state", Target: "q", Want: "running"},
		{Type: "min_ticks", Target: "q", Value: 1},
	}
}

// genFederation emits the federated-fleet shape: a small synthetic
// fleet sharded over WAN-coupled facilities with migration on, so
// every corpus exercises the conservative-window engine and its
// replay-digest determinism. The workers axis deliberately varies the
// goroutine count — the digest (and so the suite report) must not.
func genFederation(f *scenario.File, seed int64, i int) {
	f.Federation = &scenario.Federation{
		Facilities: 2 + int(pick(seed, i, axFacilities, 2)), // 2..3
		Tenants:    24 + 8*int(pick(seed, i, axTenants, 5)), // 24..56
		Workers:    int(pick(seed, i, axWorkers, 3)),        // 0..2
		CacheMB:    int64(16 << pick(seed, i, axCache, 2)),  // 16/32 MB
		Migration:  true,
		WarmUp:     pick(seed, i, axWarm, 2) == 1,
	}
	f.RunFor = "20m" // drained-stop usually exits long before this
	f.Assertions = []scenario.Assertion{{Type: "all_completed"}}
}

// genRemediate emits the unattended health-loop run: an epoch-protected
// victim crashes with NO scripted recovery event — the health stanza's
// probes must detect it, the controller cordons and drains neighbors,
// and the victim is re-admitted from its last committed epoch on its
// own. The policy axis rotates the detection preset (fast through
// conservative) and the tenant axis varies how much neighbor capacity
// the drain path has to make room from.
func genRemediate(f *scenario.File, seed int64, i int) {
	f.Swap = "incremental"
	f.SaveDeadline = "20s"
	f.Policy = policies[pick(seed, i, axPolicy, 3)]
	hp := []string{"fast", "balanced", "conservative"}[pick(seed, i, axHealthPolicy, 3)]
	f.Health = &scenario.Health{Policy: hp}
	victim := scenario.Experiment{
		Name: "r0", Workload: "sleeploop", Epochs: "15s",
		Nodes: []scenario.Node{node("r0", 0), node("r0", 1)},
		Links: []scenario.Link{{A: "r0-n0", B: "r0-n1"}},
	}
	f.Experiments = []scenario.Experiment{victim}
	neighbors := 1 + int(pick(seed, i, axTenants, 2)) // 1..2
	for t := 0; t < neighbors; t++ {
		name := fmt.Sprintf("r%d", t+1)
		f.Experiments = append(f.Experiments, scenario.Experiment{
			Name: name, Workload: "diskchurn", Nodes: []scenario.Node{node(name, 0)},
		})
	}
	f.Pool = 2 + neighbors
	f.RunFor = "6m"
	crashAt := 80 + int(pick(seed, i, axCrashAt, 4))*10 // 80..110s: epochs committed
	f.Faults = []scenario.Fault{
		{Kind: "crash", At: fmt.Sprintf("%ds", crashAt), Target: "r0"},
	}
	f.Assertions = []scenario.Assertion{
		{Type: "remediated", Target: "r0"},
		{Type: "recovered", Target: "r0"},
		{Type: "max_detect_ms", Target: "r0", Value: 8000},
		{Type: "state", Target: "r0", Want: "running"},
	}
}

// genCommit2PC emits the 2PC workload: coordinator and participants on
// a LAN running prepare/commit/abort rounds; half the seed space
// crash-stops the coordinator mid-round and blocks the yes-voters.
func genCommit2PC(f *scenario.File, seed int64, i int) {
	n := 3 + int(pick(seed, i, axNodes, 2)) // 3..4
	e := scenario.Experiment{Name: "tx", Workload: "commit2pc"}
	var members []string
	for j := 0; j < n; j++ {
		nd := node("tx", j)
		e.Nodes = append(e.Nodes, nd)
		members = append(members, nd.Name)
	}
	e.LANs = []scenario.LAN{{Name: "txlan", Members: members}}
	f.Experiments = []scenario.Experiment{e}
	f.Pool = n
	f.RunFor = "3m"
	f.Events = []scenario.Event{{At: "40s", Action: "checkpoint", Target: "tx"}}
	f.Assertions = []scenario.Assertion{
		{Type: "state", Target: "tx", Want: "running"},
		{Type: "min_ticks", Target: "tx", Value: 1},
	}
}
