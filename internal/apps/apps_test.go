package apps

import (
	"testing"

	"emucheck/internal/guest"
	"emucheck/internal/metrics"
	"emucheck/internal/node"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

func oneKernel(seed int64) (*sim.Simulator, *guest.Kernel) {
	s := sim.New(seed)
	p := node.DefaultParams()
	m := node.NewMachine(s, "n0", p)
	return s, guest.New(m, p, guest.DefaultConfig())
}

func linkedKernels(seed int64, names []string, rate simnet.Bitrate) (*sim.Simulator, []*guest.Kernel) {
	s := sim.New(seed)
	p := node.DefaultParams()
	p.ExperimentLink = rate
	sw := simnet.NewSwitch(s, 2*sim.Microsecond)
	var ks []*guest.Kernel
	for _, n := range names {
		m := node.NewMachine(s, n, p)
		k := guest.New(m, p, guest.DefaultConfig())
		m.ExpNIC.Attach(sw)
		sw.Connect(m.ExpNIC.Addr(), m.ExpNIC)
		ks = append(ks, k)
	}
	return s, ks
}

func TestSleepLoopBaseline(t *testing.T) {
	s, k := oneKernel(1)
	a := NewSleepLoop(k, 200)
	finished := false
	a.Run(func() { finished = true })
	s.RunFor(10 * sim.Second)
	if !finished {
		t.Fatal("loop incomplete")
	}
	if a.Times.Len() != 200 {
		t.Fatalf("samples = %d", a.Times.Len())
	}
	mean := a.Times.Mean() / float64(sim.Millisecond)
	if mean < 19.9 || mean > 20.1 {
		t.Fatalf("mean iteration %.3f ms, want ~20", mean)
	}
	// 97% of iterations accurate to within 28 µs (Fig. 4).
	frac := metrics.FractionWithin(a.Times.Values(), 20*float64(sim.Millisecond), 28*float64(sim.Microsecond))
	if frac < 0.9 {
		t.Fatalf("only %.0f%% of iterations within 28us", frac*100)
	}
}

func TestCPULoopBaseline(t *testing.T) {
	s, k := oneKernel(1)
	a := NewCPULoop(k, 50)
	finished := false
	a.Run(func() { finished = true })
	s.RunFor(60 * sim.Second)
	if !finished {
		t.Fatal("loop incomplete")
	}
	mean := a.Times.Mean() / float64(sim.Millisecond)
	if mean < 236 || mean > 238 {
		t.Fatalf("mean %.1f ms, want ~236.6", mean)
	}
}

func TestIperfStreamsAndTraces(t *testing.T) {
	s, ks := linkedKernels(1, []string{"snd", "rcv"}, simnet.Gbps)
	ip := NewIperf(ks[0], ks[1])
	ip.Start(16 << 20)
	s.RunFor(10 * sim.Second)
	if !ip.Sender.Done() {
		t.Fatalf("transfer incomplete: %d", ip.Sender.Acked())
	}
	if !ip.CleanTrace() {
		t.Fatalf("loss-free run has artifacts: rtx=%d", ip.Sender.Retransmits)
	}
	if ip.Trace.Len() < 1000 {
		t.Fatalf("trace too small: %d", ip.Trace.Len())
	}
	// Sustained throughput should be a solid fraction of 1 Gbps.
	gaps := metrics.InterArrivals(ip.Trace)
	med := metrics.Percentile(toF(gaps), 50)
	if med > 40*float64(sim.Microsecond) {
		t.Fatalf("median inter-packet %.1fus too slow", med/float64(sim.Microsecond))
	}
}

func toF(ts []sim.Time) []float64 {
	out := make([]float64, len(ts))
	for i, v := range ts {
		out[i] = float64(v)
	}
	return out
}

func TestIperfUnbounded(t *testing.T) {
	s, ks := linkedKernels(2, []string{"snd", "rcv"}, simnet.Gbps)
	ip := NewIperf(ks[0], ks[1])
	ip.Start(-1)
	s.RunFor(2 * sim.Second)
	if ip.Receiver.Delivered() < 50<<20 {
		t.Fatalf("delivered only %d in 2s", ip.Receiver.Delivered())
	}
	ip.Stop()
}

func TestBitTorrentSwarmCompletes(t *testing.T) {
	s, ks := linkedKernels(3, []string{"seeder", "c1", "c2", "c3"}, 100*simnet.Mbps)
	bt := NewBitTorrent(ks[0], ks[1:], 8<<20) // 8 MB, 32 pieces
	bt.Start()
	s.RunFor(5 * sim.Minute)
	if !bt.AllComplete() {
		for _, c := range bt.Clients {
			t.Logf("%s: %d/%d pieces", c.Name, bt.countHave(c.Name), bt.Pieces)
		}
		t.Fatal("swarm incomplete")
	}
	// The seeder trace must show traffic to every client.
	for name, tr := range bt.SeederTrace {
		if tr.Len() == 0 {
			t.Fatalf("no seeder traffic to %s", name)
		}
	}
}

func TestBitTorrentPeerSharing(t *testing.T) {
	s, ks := linkedKernels(4, []string{"seeder", "c1", "c2", "c3"}, 100*simnet.Mbps)
	bt := NewBitTorrent(ks[0], ks[1:], 16<<20)
	bt.Start()
	s.RunFor(10 * sim.Minute)
	if !bt.AllComplete() {
		t.Fatal("incomplete")
	}
	// Peers act as servers too (paper: "once a peer has downloaded a
	// part of a file, it serves that part to other peers"): seeder
	// upload should be well under 3x the file size.
	var seederBytes float64
	for _, tr := range bt.SeederTrace {
		for _, smp := range tr.Samples {
			seederBytes += smp.V
		}
	}
	if seederBytes >= 3*16<<20 {
		t.Fatalf("no peer sharing: seeder pushed %.0f MB for a 16 MB file", seederBytes/(1<<20))
	}
}

func TestBonnieShapes(t *testing.T) {
	results := map[BonnieOp]float64{}
	for _, op := range BonnieOps {
		s, k := oneKernel(5)
		b := NewBonnie(k)
		b.FileBytes = 64 << 20 // keep the unit test quick
		done := false
		b.Run(op, func(mbps float64) { results[op] = mbps; done = true })
		s.RunFor(sim.Hour)
		if !done {
			t.Fatalf("%v incomplete", op)
		}
	}
	if results[BlockWrites] < 40 || results[BlockWrites] > 75 {
		t.Fatalf("block writes %.1f MB/s", results[BlockWrites])
	}
	if results[BlockRewrites] >= results[BlockWrites] {
		t.Fatal("rewrites should be slower than writes")
	}
	if results[CharWrites] >= results[BlockWrites] {
		t.Fatal("char writes should trail block writes")
	}
	if results[CharReads] >= results[BlockReads] {
		t.Fatal("char reads should trail block reads")
	}
}

func TestFileCopyThroughputSeries(t *testing.T) {
	s, k := oneKernel(6)
	fc := NewFileCopy(k, 64<<20)
	done := false
	fc.Run(func() { done = true })
	s.RunFor(sim.Minute)
	if !done {
		t.Fatal("copy incomplete")
	}
	if fc.Throughput.Len() < 2 {
		t.Fatalf("throughput samples = %d", fc.Throughput.Len())
	}
	if fc.ExecutionDur <= 0 {
		t.Fatal("no duration")
	}
	// Read+write copy: plausible mid-teens MB/s on one spindle.
	mean := fc.Throughput.Mean()
	if mean < 8 || mean > 40 {
		t.Fatalf("copy throughput %.1f MB/s implausible", mean)
	}
}
