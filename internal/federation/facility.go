package federation

import (
	"container/list"
	"fmt"

	"emucheck/internal/notify"
	"emucheck/internal/sched"
	"emucheck/internal/sim"
	"emucheck/internal/storage"
	"emucheck/internal/swap"
)

// Facility is one federated testbed site: a self-contained simulated
// fleet — its own event world, scheduler, control-LAN bus and delta
// cache — coupled to its peers only through WAN messages exchanged at
// window barriers. Everything a Facility owns is touched exclusively
// by whichever worker goroutine is advancing its world (or by the
// single-threaded barrier), so facilities need no locks.
type Facility struct {
	Idx   int
	S     *sim.Simulator
	Sched *sched.Scheduler
	Bus   *notify.Bus
	// Cache is the facility's node-local delta cache: restores replay
	// checkpoint chains from here when resident, from the shared pool
	// when not. Migration warm-up pre-seeds it.
	Cache *storage.DeltaCache

	fed *Federation

	// outbox collects cross-facility messages emitted during the
	// current window; the barrier drains it. seq orders messages from
	// this facility within one timestamp.
	outbox []Message
	seq    int64

	// pendingCommit lists tenants whose chains grew this window; the
	// barrier flushes the new segments to the shared pool.
	pendingCommit []*tenant
	// sleepers is the FIFO of voluntarily parked tenants, in
	// fell-asleep order — the balancer migrates the longest sleeper.
	sleepers *list.List

	// ticks counts tenant activity ticks homed here; completed counts
	// tenants that finished while homed here.
	ticks     int64
	completed int

	// WAN ledgers (facility-local so window code never shares state):
	// WANDeliveries counts sync messages received, wanSum folds their
	// payloads so the digest is sensitive to exactly which messages
	// arrived.
	WANDeliveries int64
	wanSum        int64

	// Restore accounting: bytes served locally (cache) vs streamed
	// from the shared pool.
	LocalBytes  int64
	RemoteBytes int64

	// Arrivals and Departures count migrations in and out.
	Arrivals   int
	Departures int
}

// send queues a cross-facility message for the next barrier.
func (fac *Facility) send(m Message) {
	fac.seq++
	m.When = fac.S.Now()
	m.Src = fac.Idx
	m.Seq = fac.seq
	fac.outbox = append(fac.outbox, m)
}

// sleepPush appends a freshly parked sleeper; sleepRemove drops one
// that woke (or is migrating away); popSleeper hands the balancer the
// longest-sleeping tenant. The list is only touched by the facility's
// own world or the barrier, like everything else on the Facility.
func (fac *Facility) sleepPush(t *tenant) {
	t.sleepEl = fac.sleepers.PushBack(t)
}

func (fac *Facility) sleepRemove(t *tenant) {
	if t.sleepEl != nil {
		fac.sleepers.Remove(t.sleepEl)
		t.sleepEl = nil
	}
}

func (fac *Facility) popSleeper() *tenant {
	el := fac.sleepers.Front()
	if el == nil {
		return nil
	}
	t := el.Value.(*tenant)
	fac.sleepers.Remove(el)
	t.sleepEl = nil
	return t
}

// tenant is one synthetic experiment in the federated fleet — the
// scale-fleet recipe (80% bursty / 20% hog, all parameters arithmetic
// in the global id) extended with a content-addressed checkpoint
// chain in the shared pool and the ability to migrate between
// facilities while parked.
type tenant struct {
	fed  *Federation
	fac  *Facility // current home; reassigned only at migration delivery
	id   int
	name string
	hog  bool
	job  *sched.Job

	timer    *sim.Timer // bound to fac.S; rebuilt on migration
	interval sim.Time

	burstLen int
	cycles   int
	idleDur  sim.Time
	owed     int

	ticks      int
	burstTicks int
	cycle      int
	sleeping   bool
	done       bool
	deliveries int64
	migrations int
	cancels    []func()
	pending    bool // chain has uncommitted segments
	sleepEl    *list.Element

	// chain is the tenant's checkpoint chain; the prefix chain[:committed]
	// is authoritative in the shared pool (commits land at barriers).
	// Parks append pending delta segments up to a depth bound.
	chain     []swap.ChainSegment
	committed int
	wakeAt    sim.Time // pending wake-up when sleeping, for migration handoff
}

// chainFor derives tenant id's initial checkpoint chain: 2-5 segments
// of a few hundred KB, addresses disjoint across the fleet.
func chainFor(id int) []swap.ChainSegment {
	segs := 2 + id%4
	chain := make([]swap.ChainSegment, 0, segs)
	for k := 0; k < segs; k++ {
		chain = append(chain, swap.ChainSegment{
			Addr:  chainAddr(id, k),
			Bytes: int64(256+(id%7)*128) << 10,
		})
	}
	return chain
}

// chainAddr spaces tenant chains maxChainDepth addresses apart.
func chainAddr(id, k int) storage.Addr {
	return storage.Addr(1<<32 + id*maxChainDepth + k)
}

// maxChainDepth bounds a chain: past it, parks merge into the last
// delta instead of deepening the replay.
const maxChainDepth = 8

// newTenant creates tenant id homed at fac and wires its job. Unlike
// the scale recipe's seed-invariant fleet, every per-tenant parameter
// is a Mix64 draw over (seed, id), so the seed genuinely reshapes the
// workload — without consuming any facility's RNG stream, which only
// bus delivery jitter draws from. Hooks resolve t.fac at call time,
// so one closure set survives migration.
func (fed *Federation) newTenant(id int, fac *Facility) *tenant {
	draw := func(axis, n int64) int64 {
		return int64(sim.Mix64(fed.cfg.Seed, int64(id), axis) % uint64(n))
	}
	t := &tenant{
		fed: fed, fac: fac, id: id,
		name:     fmt.Sprintf("t%d", id),
		hog:      draw(1, 5) == 4,
		interval: 100*sim.Millisecond + sim.Time(draw(2, 7))*3*sim.Millisecond,
		chain:    chainFor(id),
	}
	if t.hog {
		t.owed = 120 + int(draw(3, 50))*3
	} else {
		t.burstLen = 24 + int(draw(4, 8))
		t.cycles = 2 + int(draw(5, 3))
		t.idleDur = 5*sim.Second + sim.Time(draw(6, 5))*500*sim.Millisecond
	}
	t.bind(fac)
	return t
}

// bind attaches the tenant to a facility: timer, bus subscriptions
// and a fresh scheduler job (sched jobs are single-use; a migrated
// tenant re-enters the destination's queue as a new submission).
func (t *tenant) bind(fac *Facility) {
	t.fac = fac
	t.timer = fac.S.NewTimer("fed.tick", t.fire)
	t.job = &sched.Job{
		Name: t.name, Need: 1, Preemptible: true,
		Hooks: sched.Hooks{
			Start:    t.start,
			Park:     t.park,
			Resume:   t.resume,
			ParkCost: func() int64 { return int64(1+t.id%16) << 20 },
		},
	}
	for k := 0; k < 2; k++ {
		t.cancels = append(t.cancels, fac.Bus.SubscribeScoped("activity", t.name, t.name, func(*notify.Msg) {
			t.deliveries++
		}))
	}
}

// unbind detaches the tenant from its facility at migration
// departure: the wake timer is disarmed and the scoped subscriptions
// dropped. Runs at the barrier, with the source world stopped.
func (t *tenant) unbind() {
	t.fac.sleepRemove(t)
	t.wakeAt = t.timer.When()
	t.timer.Stop()
	for _, cancel := range t.cancels {
		cancel()
	}
	t.cancels = t.cancels[:0]
}

// start is the admission hook: boot plus, for a tenant with committed
// checkpoint state (a migrated or previously parked one), the chain
// restore — served from the facility cache where resident, streamed
// from the shared pool where not.
func (t *tenant) start(done func(error)) {
	d := 2*sim.Second + t.restoreCost()
	t.fac.S.DoAfter(d, "fed.start", func() {
		done(nil)
		t.timer.Reset(t.interval)
	})
}

// park is the swap-out hook: it stops the activity timer, appends one
// dirty-delta segment to the chain (committed to the shared pool at
// the next barrier) and, for a voluntary park, arms the wake-up.
func (t *tenant) park(done func(error)) {
	t.dirty()
	t.fac.S.DoAfter(sim.Second, "fed.park", func() {
		t.timer.Stop()
		done(nil)
		if t.sleeping {
			t.timer.Reset(t.idleDur)
			t.wakeAt = t.timer.When()
			t.fac.sleepPush(t)
		}
	})
}

// resume is the swap-in hook: chain replay priced like start's.
func (t *tenant) resume(done func(error)) {
	d := 1500*sim.Millisecond + t.restoreCost()
	t.fac.S.DoAfter(d, "fed.resume", func() {
		done(nil)
		t.timer.Reset(t.interval)
	})
}

// dirty appends one pending delta segment. At full depth the chain
// stops growing — the depth bound that keeps replay cost flat (the
// merged tail is already authoritative in the pool, so re-committing
// it would change a content-addressed segment under its address).
func (t *tenant) dirty() {
	if len(t.chain) >= maxChainDepth {
		return
	}
	t.chain = append(t.chain, swap.ChainSegment{
		Addr:  chainAddr(t.id, len(t.chain)),
		Bytes: int64(128+(t.id%5)*64) << 10,
	})
	if !t.pending {
		t.pending = true
		t.fac.pendingCommit = append(t.fac.pendingCommit, t)
	}
}

// restoreCost replays the committed chain through the facility cache
// and prices it: local bytes at cache media speed, remote bytes at
// one pool round trip per miss plus the control-LAN stream rate.
func (t *tenant) restoreCost() sim.Time {
	if t.committed == 0 {
		return 0
	}
	fac := t.fac
	local, remote := swap.RestoreChain(t.chain[:t.committed], fac.Cache, t.fed.Pool)
	fac.LocalBytes += local
	fac.RemoteBytes += remote
	d := fac.Cache.ReadCost(local)
	if remote > 0 {
		d += t.fed.Pool.ReadCost(remote) + sim.Time(remote*int64(sim.Second)/lanStreamRate)
	}
	return d
}

// lanStreamRate prices pool restores over the facility control LAN
// (100 Mbps, the §7.2 bottleneck) in bytes/second.
const lanStreamRate = 100_000_000 / 8

// fire is the tenant's timer callback: wake-up when sleeping, an
// activity tick when running.
func (t *tenant) fire() {
	fac := t.fac
	if t.sleeping {
		t.sleeping = false
		fac.sleepRemove(t)
		if err := fac.Sched.Unpark(t.name); err != nil {
			panic("federation: unpark " + t.name + ": " + err.Error())
		}
		return
	}
	if t.job.State() != sched.Running {
		return
	}
	t.ticks++
	fac.ticks++
	fac.Sched.Touch(t.name)
	if t.ticks%8 == 0 {
		fac.Bus.Publish(&notify.Msg{Topic: "activity", From: t.name, Scope: t.name})
	}
	if t.ticks%16 == 8 && t.fed.nFacilities() > 1 {
		// Cross-facility sync chatter: the WAN coupling that the
		// conservative windows exist to order. Destination is a pure
		// function of (id, tick) so the traffic pattern is identical at
		// every worker count.
		dst := (t.id + 1 + t.ticks%3) % t.fed.nFacilities()
		if dst == fac.Idx {
			dst = (dst + 1) % t.fed.nFacilities()
		}
		fac.send(Message{
			Kind: msgSync, Dst: dst,
			Bytes:   int64(4+t.id%16) << 10,
			Payload: int64(t.id)*1_000_000 + int64(t.ticks),
		})
	}
	if t.hog {
		if t.ticks >= t.owed {
			t.finish()
			return
		}
	} else {
		t.burstTicks++
		if t.burstTicks >= t.burstLen {
			t.burstTicks = 0
			t.cycle++
			if t.cycle >= t.cycles {
				t.finish()
				return
			}
			t.sleeping = true
			if err := fac.Sched.Park(t.name); err != nil {
				panic("federation: park " + t.name + ": " + err.Error())
			}
			return
		}
	}
	t.timer.Reset(t.interval)
}

// finish retires the tenant at its current facility.
func (t *tenant) finish() {
	t.timer.Stop()
	for _, cancel := range t.cancels {
		cancel()
	}
	t.cancels = t.cancels[:0]
	if err := t.fac.Sched.Finish(t.name); err != nil {
		panic("federation: finish " + t.name + ": " + err.Error())
	}
	t.done = true
	t.fac.completed++
}
