package swap

import (
	"testing"

	"emucheck/internal/metrics"
	"emucheck/internal/sim"
)

// cycle runs one full swap-out/swap-in round trip on the rig.
func (r *rig) cycle(t *testing.T, o Options) (*OutReport, *InReport) {
	t.Helper()
	var outs []*OutReport
	if err := r.m.SwapOut(o, func(x []*OutReport, _ error) { outs = x }); err != nil {
		t.Fatal(err)
	}
	r.s.RunFor(15 * sim.Minute)
	if outs == nil {
		t.Fatal("swap-out incomplete")
	}
	var ins []*InReport
	if err := r.m.SwapIn(o, func(x []*InReport, _ error) { ins = x }); err != nil {
		t.Fatal(err)
	}
	r.s.RunFor(15 * sim.Minute)
	if ins == nil {
		t.Fatal("swap-in incomplete")
	}
	return outs[0], ins[0]
}

// TestIncrementalSwapMovesDeltaOnly: after the first (full) cycle, an
// incremental swap-out's memory upload must track the dirtied working
// set, not the full resident image, and each disk epoch must land in
// the lineage chain.
func TestIncrementalSwapMovesDeltaOnly(t *testing.T) {
	r := newRig(3)
	r.s.RunFor(sim.Second)
	r.dirty(32 << 20)

	o := IncrementalOptions()
	out1, _ := r.cycle(t, o)
	if !out1.Incremental {
		t.Fatal("report not marked incremental")
	}
	full := out1.MemoryBytes // first cycle: no base on the server yet

	r.dirty(8 << 20)
	out2, in2 := r.cycle(t, o)
	if out2.MemoryBytes >= full/2 {
		t.Fatalf("second swap-out moved %d memory bytes, full image is %d — delta not incremental",
			out2.MemoryBytes, full)
	}
	if out2.ChainDepth < 1 {
		t.Fatal("lineage chain empty after incremental commit")
	}
	// Swap-in still restores the full resident image (server merges the
	// deltas offline).
	if in2.MemoryBytes < full/2 {
		t.Fatalf("swap-in restored only %d memory bytes", in2.MemoryBytes)
	}
	if !in2.Incremental || in2.DeltaBytes <= 0 {
		t.Fatalf("swap-in report: %+v", in2)
	}
}

// TestIncrementalCheaperThanFull: across identical multi-cycle dirty
// workloads, the incremental pipeline must move strictly fewer server
// bytes than the full-copy baseline.
func TestIncrementalCheaperThanFull(t *testing.T) {
	run := func(o Options) uint64 {
		r := newRig(7)
		r.s.RunFor(sim.Second)
		for c := 0; c < 3; c++ {
			r.dirty(16 << 20)
			r.cycle(t, o)
		}
		return r.m.Server.Received + r.m.Server.Served
	}
	full := run(DefaultOptions())
	incr := run(IncrementalOptions())
	if incr >= full {
		t.Fatalf("incremental moved %d bytes, full-copy %d — no savings", incr, full)
	}
}

// TestLineageChainBounded: many incremental cycles must not grow the
// swap-in replay without bound; pruning folds old epochs into the base.
func TestLineageChainBounded(t *testing.T) {
	r := newRig(11)
	r.m.MaxChainDepth = 3
	r.m.Stats = metrics.NewCounters()
	r.s.RunFor(sim.Second)
	o := IncrementalOptions()
	for c := 0; c < 8; c++ {
		r.dirty(4 << 20)
		r.cycle(t, o)
	}
	lin := r.m.Lineage("n0")
	if lin.Depth() > 3 {
		t.Fatalf("chain depth %d exceeds bound 3", lin.Depth())
	}
	if lin.Epochs() != 8 {
		t.Fatalf("committed %d epochs, want 8", lin.Epochs())
	}
	if lin.MergedBytes == 0 {
		t.Fatal("pruning never merged anything")
	}
	if r.m.Stats.Get("out.delta_bytes") == 0 || r.m.Stats.Get("in.mem_bytes") == 0 {
		t.Fatalf("stats not accumulated: %v", r.m.Stats.Names())
	}
}
